//! Synthesis of 9-axis IMU streams for postural and oral-gestural activity.
//!
//! Each micro activity has a characteristic motion signature — a dominant
//! oscillation frequency and amplitude plus an orientation regime. These
//! signatures drive the synthetic accelerometer/gyroscope/magnetometer
//! streams so the paper's feature set (32 statistics incl. Goertzel 1–5 Hz
//! coefficients) separates the classes about as well as real hardware did.

use cace_model::{Gestural, Postural};
use cace_signal::trajectory::ImuSample;
use cace_signal::{GaussianSampler, Vec3};

use crate::{NoiseConfig, IMU_RATE_HZ};

/// Motion signature of one micro activity.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MotionProfile {
    /// Dominant oscillation frequency (Hz).
    freq_hz: f64,
    /// Peak acceleration amplitude (m/s²).
    amp: f64,
    /// Secondary-harmonic fraction.
    harmonic: f64,
    /// Baseline tilt of the device (radians about x̂).
    tilt: f64,
    /// Angular-rate amplitude (rad/s).
    gyro_amp: f64,
}

const fn postural_profile(p: Postural) -> MotionProfile {
    match p {
        Postural::Walking => MotionProfile {
            freq_hz: 2.0,
            amp: 2.6,
            harmonic: 0.35,
            tilt: 0.0,
            gyro_amp: 0.8,
        },
        Postural::Standing => MotionProfile {
            freq_hz: 0.4,
            amp: 0.15,
            harmonic: 0.0,
            tilt: 0.0,
            gyro_amp: 0.05,
        },
        Postural::Sitting => MotionProfile {
            freq_hz: 0.3,
            amp: 0.10,
            harmonic: 0.0,
            tilt: 0.9,
            gyro_amp: 0.04,
        },
        Postural::Cycling => MotionProfile {
            freq_hz: 1.4,
            amp: 1.6,
            harmonic: 0.5,
            tilt: 0.6,
            gyro_amp: 0.5,
        },
        Postural::Lying => MotionProfile {
            freq_hz: 0.2,
            amp: 0.06,
            harmonic: 0.0,
            tilt: 1.5,
            gyro_amp: 0.02,
        },
        Postural::Running => MotionProfile {
            freq_hz: 2.9,
            amp: 5.2,
            harmonic: 0.45,
            tilt: 0.1,
            gyro_amp: 1.6,
        },
    }
}

const fn gestural_profile(g: Gestural) -> MotionProfile {
    match g {
        Gestural::Silent => MotionProfile {
            freq_hz: 0.3,
            amp: 0.05,
            harmonic: 0.0,
            tilt: 0.0,
            gyro_amp: 0.02,
        },
        Gestural::Talking => MotionProfile {
            freq_hz: 4.0,
            amp: 0.55,
            harmonic: 0.3,
            tilt: 0.05,
            gyro_amp: 0.20,
        },
        Gestural::Eating => MotionProfile {
            freq_hz: 1.2,
            amp: 1.05,
            harmonic: 0.25,
            tilt: 0.25,
            gyro_amp: 0.35,
        },
        Gestural::Yawning => MotionProfile {
            freq_hz: 0.6,
            amp: 0.85,
            harmonic: 0.1,
            tilt: 0.35,
            gyro_amp: 0.25,
        },
        Gestural::Laughing => MotionProfile {
            freq_hz: 5.0,
            amp: 1.25,
            harmonic: 0.4,
            tilt: 0.1,
            gyro_amp: 0.45,
        },
    }
}

/// Synthesizes 9-axis IMU frames for the pocket smartphone (postural) and
/// the neck SensorTag (oral-gestural).
#[derive(Debug, Clone)]
pub struct ImuSynthesizer {
    noise: NoiseConfig,
}

impl ImuSynthesizer {
    /// Creates a synthesizer with the given noise configuration.
    pub fn new(noise: NoiseConfig) -> Self {
        Self { noise }
    }

    /// The noise configuration in use.
    pub fn noise(&self) -> &NoiseConfig {
        &self.noise
    }

    fn frame(&self, profile: MotionProfile, n: usize, rng: &mut GaussianSampler) -> Vec<ImuSample> {
        let phase0 = rng.uniform() * std::f64::consts::TAU;
        // Small per-frame variability so two frames of the same class are
        // not identical: ±8 % frequency, ±15 % amplitude.
        let freq = profile.freq_hz * (1.0 + 0.08 * rng.standard_normal().clamp(-2.0, 2.0));
        let amp = profile.amp * (1.0 + 0.15 * rng.standard_normal().clamp(-2.0, 2.0)).abs();
        let tilt = profile.tilt + 0.05 * rng.standard_normal();
        let (sin_t, cos_t) = tilt.sin_cos();
        // Gravity in the tilted body frame (rotation about x̂).
        let gravity_body = Vec3::new(0.0, -9.81 * sin_t, 9.81 * cos_t);

        (0..n)
            .map(|i| {
                let t = i as f64 / IMU_RATE_HZ;
                let w = std::f64::consts::TAU * freq * t + phase0;
                let motion = amp * (w.sin() + profile.harmonic * (2.0 * w).cos());
                // Motion energy split across axes with a fixed pattern so
                // axis statistics are informative.
                let accel = Vec3::new(
                    0.55 * motion + rng.normal(0.0, self.noise.imu_accel_noise),
                    0.25 * motion + rng.normal(0.0, self.noise.imu_accel_noise),
                    0.80 * motion + rng.normal(0.0, self.noise.imu_accel_noise),
                ) + gravity_body;
                let gyro = Vec3::new(
                    profile.gyro_amp * w.cos() + rng.normal(0.0, self.noise.imu_gyro_noise),
                    0.3 * profile.gyro_amp * w.sin() + rng.normal(0.0, self.noise.imu_gyro_noise),
                    rng.normal(0.0, self.noise.imu_gyro_noise),
                );
                let mag = Vec3::new(cos_t, 0.0, -sin_t); // rough north reference
                ImuSample { accel, gyro, mag }
            })
            .collect()
    }

    /// One smartphone frame of `n` samples for a postural state.
    pub fn phone_frame(
        &self,
        postural: Postural,
        n: usize,
        rng: &mut GaussianSampler,
    ) -> Vec<ImuSample> {
        self.frame(postural_profile(postural), n, rng)
    }

    /// One neck-tag frame of `n` samples for a gestural state.
    ///
    /// The neck tag also picks up an attenuated copy of gross body motion,
    /// which is why the paper's gestural accuracy (95.3 %) trails its
    /// postural accuracy (98.6 %).
    pub fn tag_frame(
        &self,
        gestural: Gestural,
        postural: Postural,
        n: usize,
        rng: &mut GaussianSampler,
    ) -> Vec<ImuSample> {
        let gesture = self.frame(gestural_profile(gestural), n, rng);
        let body = self.frame(postural_profile(postural), n, rng);
        gesture
            .into_iter()
            .zip(body)
            .map(|(g, b)| ImuSample {
                // Body motion bleeds into the neck tag at ~35 % amplitude;
                // subtract one gravity copy so it is not counted twice.
                accel: g.accel + (b.accel - Vec3::new(0.0, 0.0, 9.81)) * 0.35,
                gyro: g.gyro + b.gyro * 0.35,
                mag: g.mag,
            })
            .collect()
    }

    /// Whether this frame should be dropped entirely (missing sensor value).
    pub fn frame_dropped(&self, rng: &mut GaussianSampler) -> bool {
        rng.chance(self.noise.imu_dropout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_signal::goertzel::goertzel_band;

    /// AC energy of the accelerometer magnitude — removes the (tilt-
    /// dependent) gravity baseline so only motion dynamics are compared.
    fn ac_energy(frame: &[ImuSample]) -> f64 {
        let mags: Vec<f64> = frame.iter().map(|s| s.accel.norm()).collect();
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mags.len() as f64
    }

    #[test]
    fn frames_have_requested_length() {
        let synth = ImuSynthesizer::new(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(1);
        assert_eq!(synth.phone_frame(Postural::Walking, 75, &mut rng).len(), 75);
        assert_eq!(
            synth
                .tag_frame(Gestural::Talking, Postural::Sitting, 75, &mut rng)
                .len(),
            75
        );
    }

    #[test]
    fn walking_has_more_energy_than_standing() {
        let synth = ImuSynthesizer::new(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(2);
        let walk = ac_energy(&synth.phone_frame(Postural::Walking, 150, &mut rng));
        let stand = ac_energy(&synth.phone_frame(Postural::Standing, 150, &mut rng));
        assert!(
            walk > 3.0 * stand,
            "walking energy {walk} vs standing {stand}"
        );
    }

    #[test]
    fn running_is_faster_than_cycling() {
        // The Goertzel band should peak at a higher frequency for running.
        let synth = ImuSynthesizer::new(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(3);
        let peak_bin = |p: Postural, rng: &mut GaussianSampler| {
            let frame = synth.phone_frame(p, 300, rng);
            // Use the x-axis (pure motion component, no gravity).
            let xs: Vec<f64> = frame.iter().map(|s| s.accel.x).collect();
            let band = goertzel_band(&xs, IMU_RATE_HZ);
            band.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let mut run_wins = 0;
        for _ in 0..10 {
            if peak_bin(Postural::Running, &mut rng) >= peak_bin(Postural::Cycling, &mut rng) {
                run_wins += 1;
            }
        }
        assert!(
            run_wins >= 8,
            "running should usually peak higher: {run_wins}/10"
        );
    }

    #[test]
    fn gestural_classes_differ_in_energy() {
        let synth = ImuSynthesizer::new(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(4);
        let energy = |g: Gestural, rng: &mut GaussianSampler| -> f64 {
            let f = synth.tag_frame(g, Postural::Sitting, 150, rng);
            ac_energy(&f)
        };
        let silent = energy(Gestural::Silent, &mut rng);
        let laughing = energy(Gestural::Laughing, &mut rng);
        assert!(
            laughing > 2.0 * silent,
            "laughing {laughing} vs silent {silent}"
        );
    }

    #[test]
    fn body_motion_bleeds_into_tag() {
        let synth = ImuSynthesizer::new(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(5);
        let e_still =
            ac_energy(&synth.tag_frame(Gestural::Silent, Postural::Standing, 150, &mut rng));
        let e_running =
            ac_energy(&synth.tag_frame(Gestural::Silent, Postural::Running, 150, &mut rng));
        assert!(
            e_running > 2.0 * e_still,
            "running bleed {e_running} vs {e_still}"
        );
    }

    #[test]
    fn dropout_rate_honored() {
        let cfg = NoiseConfig {
            imu_dropout: 0.3,
            ..NoiseConfig::default()
        };
        let synth = ImuSynthesizer::new(cfg);
        let mut rng = GaussianSampler::seed_from_u64(6);
        let dropped = (0..10_000)
            .filter(|_| synth.frame_dropped(&mut rng))
            .count();
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "dropout rate {rate}");
    }

    #[test]
    fn determinism_with_same_seed() {
        let synth = ImuSynthesizer::new(NoiseConfig::default());
        let mut a = GaussianSampler::seed_from_u64(9);
        let mut b = GaussianSampler::seed_from_u64(9);
        let fa = synth.phone_frame(Postural::Walking, 30, &mut a);
        let fb = synth.phone_frame(Postural::Walking, 30, &mut b);
        assert_eq!(fa, fb);
    }
}
