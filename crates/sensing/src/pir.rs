//! Binary passive-infrared motion sensors, one per room.
//!
//! A PIR "indicates whether a particular room is occupied by one or more
//! *moving* individuals" (paper §III-A) — it cannot attribute motion to a
//! specific resident, which is exactly the ambiguity the coupled model
//! resolves.

use cace_model::{Postural, Room, SubLocation};
use cace_signal::GaussianSampler;

use crate::NoiseConfig;

/// One room's PIR sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PirSensor {
    /// The room this sensor covers.
    pub room: Room,
}

impl PirSensor {
    /// Creates the sensor for a room.
    pub const fn new(room: Room) -> Self {
        Self { room }
    }

    /// Simulates one reading given the residents' true locations/postures.
    ///
    /// Fires when any present resident is in this room with a moving posture,
    /// subject to the configured false-positive/false-negative rates.
    pub fn read(
        &self,
        occupants: &[(SubLocation, Postural)],
        noise: &NoiseConfig,
        rng: &mut GaussianSampler,
    ) -> bool {
        let genuine = occupants
            .iter()
            .any(|(loc, posture)| loc.room() == self.room && posture.is_moving());
        if genuine {
            !rng.chance(noise.pir_false_negative)
        } else {
            rng.chance(noise.pir_false_positive)
        }
    }

    /// The full bank of sensors, one per room, in `Room` index order.
    pub fn bank() -> [PirSensor; Room::COUNT] {
        let mut sensors = [PirSensor::new(Room::LivingRoom); Room::COUNT];
        for (i, room) in Room::ALL.into_iter().enumerate() {
            sensors[i] = PirSensor::new(room);
        }
        sensors
    }
}

/// Reads the entire PIR bank into a per-room boolean array.
pub fn read_bank(
    occupants: &[(SubLocation, Postural)],
    noise: &NoiseConfig,
    rng: &mut GaussianSampler,
) -> [bool; Room::COUNT] {
    let mut out = [false; Room::COUNT];
    for (i, sensor) in PirSensor::bank().into_iter().enumerate() {
        out[i] = sensor.read(occupants, noise, rng);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_motion_in_room() {
        let sensor = PirSensor::new(Room::Kitchen);
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(1);
        assert!(sensor.read(
            &[(SubLocation::Kitchen, Postural::Walking)],
            &noise,
            &mut rng
        ));
    }

    #[test]
    fn silent_posture_does_not_fire() {
        let sensor = PirSensor::new(Room::Kitchen);
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(2);
        assert!(!sensor.read(
            &[(SubLocation::Kitchen, Postural::Standing)],
            &noise,
            &mut rng
        ));
    }

    #[test]
    fn motion_in_other_room_does_not_fire() {
        let sensor = PirSensor::new(Room::Bedroom);
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(3);
        assert!(!sensor.read(
            &[(SubLocation::Kitchen, Postural::Walking)],
            &noise,
            &mut rng
        ));
    }

    #[test]
    fn any_of_multiple_occupants_triggers() {
        let sensor = PirSensor::new(Room::LivingRoom);
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(4);
        assert!(sensor.read(
            &[
                (SubLocation::Couch1, Postural::Sitting),
                (SubLocation::RestOfLivingRoom, Postural::Walking),
            ],
            &noise,
            &mut rng
        ));
    }

    #[test]
    fn error_rates_are_respected() {
        let sensor = PirSensor::new(Room::Porch);
        let mut noise = NoiseConfig::noiseless();
        noise.pir_false_positive = 0.2;
        let mut rng = GaussianSampler::seed_from_u64(5);
        let fires = (0..10_000)
            .filter(|_| sensor.read(&[], &noise, &mut rng))
            .count();
        let rate = fires as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "false-positive rate {rate}");
    }

    #[test]
    fn bank_covers_all_rooms() {
        let bank = PirSensor::bank();
        for (i, room) in Room::ALL.into_iter().enumerate() {
            assert_eq!(bank[i].room, room);
        }
    }

    #[test]
    fn read_bank_reflects_occupancy() {
        let noise = NoiseConfig::noiseless();
        let mut rng = GaussianSampler::seed_from_u64(6);
        let readings = read_bank(&[(SubLocation::Bed, Postural::Walking)], &noise, &mut rng);
        assert!(readings[Room::Bedroom.index()]);
        assert!(!readings[Room::Kitchen.index()]);
    }
}
