//! Noise and failure-injection configuration for the sensing substrate.

/// Noise knobs for every simulated sensor.
///
/// The defaults are tuned so the downstream micro classifiers land in the
/// accuracy regime the paper reports (≈95 % gestural, ≈98.6 % postural) and
/// the ambient channels carry occasional false/missed firings. Failure
/// injection (paper §II motivates robustness to missing sensor values) is
/// modeled by `imu_dropout` and the PIR/object error rates.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// Std-dev of additive accelerometer noise (m/s²).
    pub imu_accel_noise: f64,
    /// Std-dev of additive gyroscope noise (rad/s).
    pub imu_gyro_noise: f64,
    /// Probability that a whole IMU frame is dropped (missing sensor value).
    pub imu_dropout: f64,
    /// Probability a PIR fires with nobody moving in its room.
    pub pir_false_positive: f64,
    /// Probability a PIR misses genuine motion.
    pub pir_false_negative: f64,
    /// Object-sensor vibration sensitivity in `[0, 1]`; the paper tuned the
    /// hardware to 55 % ("best choice tested on trial and error basis").
    pub object_sensitivity: f64,
    /// Probability an object sensor fires from ambient vibration.
    pub object_false_positive: f64,
    /// Multiplicative std-dev of the iBeacon range estimates.
    pub beacon_range_noise: f64,
    /// Std-dev (meters) of the resident's position jitter inside a
    /// sub-region between ticks.
    pub position_jitter: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self {
            imu_accel_noise: 0.35,
            imu_gyro_noise: 0.05,
            imu_dropout: 0.0,
            pir_false_positive: 0.01,
            pir_false_negative: 0.05,
            object_sensitivity: 0.55,
            object_false_positive: 0.01,
            beacon_range_noise: 0.15,
            position_jitter: 0.3,
        }
    }
}

impl NoiseConfig {
    /// A noiseless configuration, useful for isolating model behavior in
    /// tests.
    pub fn noiseless() -> Self {
        Self {
            imu_accel_noise: 0.0,
            imu_gyro_noise: 0.0,
            imu_dropout: 0.0,
            pir_false_positive: 0.0,
            pir_false_negative: 0.0,
            object_sensitivity: 1.0,
            object_false_positive: 0.0,
            beacon_range_noise: 0.0,
            position_jitter: 0.0,
        }
    }

    /// A degraded configuration for failure-injection experiments: frequent
    /// IMU dropouts and unreliable ambient sensors.
    pub fn degraded() -> Self {
        Self {
            imu_accel_noise: 0.8,
            imu_gyro_noise: 0.15,
            imu_dropout: 0.15,
            pir_false_positive: 0.08,
            pir_false_negative: 0.20,
            object_sensitivity: 0.40,
            object_false_positive: 0.06,
            beacon_range_noise: 0.40,
            position_jitter: 0.6,
        }
    }

    /// Validates that all rates are inside `[0, 1]` and deviations are
    /// nonnegative.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("imu_dropout", self.imu_dropout),
            ("pir_false_positive", self.pir_false_positive),
            ("pir_false_negative", self.pir_false_negative),
            ("object_sensitivity", self.object_sensitivity),
            ("object_false_positive", self.object_false_positive),
        ];
        for (name, value) in rates {
            if !(0.0..=1.0).contains(&value) {
                return Err(format!("{name} = {value} outside [0, 1]"));
            }
        }
        let devs = [
            ("imu_accel_noise", self.imu_accel_noise),
            ("imu_gyro_noise", self.imu_gyro_noise),
            ("beacon_range_noise", self.beacon_range_noise),
            ("position_jitter", self.position_jitter),
        ];
        for (name, value) in devs {
            if value < 0.0 {
                return Err(format!("{name} = {value} negative"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sensitivity() {
        let c = NoiseConfig::default();
        assert!((c.object_sensitivity - 0.55).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn presets_validate() {
        assert!(NoiseConfig::noiseless().validate().is_ok());
        assert!(NoiseConfig::degraded().validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_rates() {
        let c = NoiseConfig {
            pir_false_positive: 1.5,
            ..NoiseConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NoiseConfig {
            beacon_range_noise: -0.1,
            ..NoiseConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
