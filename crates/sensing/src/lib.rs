//! # cace-sensing
//!
//! Smart-home sensing substrate: a faithful simulator of the paper's
//! PogoPlug testbed.
//!
//! The paper's deployment (§VII-A) instruments a one-bedroom apartment with
//! six binary PIR motion sensors (one per room), eight object sensors with
//! 55 % vibration sensitivity, nine iBeacons used for trilateration-based
//! sub-region localization and multi-occupancy detection, plus a pocket
//! smartphone and a neck-worn Simplelink SensorTag per resident, both
//! sampled at 50 Hz.
//!
//! We do not have that hardware, so this crate *is* the hardware: given
//! ground-truth micro states it synthesizes every sensor stream the real
//! testbed would produce, with configurable noise so the downstream
//! classifiers and models face a realistic (non-trivial) inference problem.
//! See `DESIGN.md` at the workspace root for the substitution argument.
//!
//! ```
//! use cace_sensing::{ImuSynthesizer, NoiseConfig};
//! use cace_model::Postural;
//! use cace_signal::GaussianSampler;
//!
//! let mut rng = GaussianSampler::seed_from_u64(1);
//! let synth = ImuSynthesizer::new(NoiseConfig::default());
//! let frame = synth.phone_frame(Postural::Walking, 75, &mut rng);
//! assert_eq!(frame.len(), 75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod home;
pub mod imu;
pub mod noise;
pub mod object;
pub mod pir;

pub use beacon::{BeaconEstimate, BeaconGrid};
pub use home::{
    AmbientReading, GroundTruthTick, SensorTick, SmartHome, UserTickTruth, WearableReading,
};
pub use imu::ImuSynthesizer;
pub use noise::NoiseConfig;
pub use object::ObjectKind;
pub use pir::PirSensor;

/// Samples per model tick: one 1.5 s frame at 50 Hz.
///
/// The end-to-end pipeline advances in 1.5 s ticks, each carrying one full
/// IMU frame per device. (The 50 %-overlap sliding segmentation of §VII-E is
/// exercised separately on continuous streams by `cace-features`.)
pub const SAMPLES_PER_TICK: usize = 75;

/// IMU sampling rate used throughout, matching the paper.
pub const IMU_RATE_HZ: f64 = 50.0;
