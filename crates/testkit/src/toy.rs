//! A toy decoder family over the generic trellis engine, plus a naive
//! reference implementation of its recursion.
//!
//! [`ToySpace`] and [`ToyModel`] form the smallest complete instantiation
//! of the engine's [`StateSpace`] + [`ScoreModel`] axes: a hand-specified
//! group-major state list per tick and explicit transition tables, with
//! the full continue/switch structure enabled so both kernel memoizations
//! — the per-slot fold sharing and the per-run switch cache — are on the
//! hook. [`ToyFlatModel`] is the switch-free variant exercising the
//! `SWITCH == false` path (the shape of the NH flat-product decoder).
//!
//! [`naive_step`] is the executable specification: a per-destination ×
//! per-source scan with strict-`>` first-argmax and no memoization at
//! all. The property tests in the repo root (`tests/generic_engine.rs`)
//! assert the generic kernels match it bit-for-bit on dyadic-lattice
//! scores (multiples of ⅛, so every floating-point sum is exact and every
//! tie is a true tie).

use cace_hdbn::trellis::{argmax, init_into, step_dense_into};
use cace_hdbn::{Dest, ScoreModel, StateSpace, StepScratch};

/// One toy tick: an explicit group-major state list.
#[derive(Debug, Clone)]
pub struct ToySpace {
    groups: Vec<u32>,
    pairs: Vec<u32>,
    emissions: Vec<f64>,
    runs: Vec<(u32, u32, u32)>,
    slots: Vec<u32>,
    uniq_pairs: Vec<u32>,
}

impl ToySpace {
    /// Builds a tick from `(group, pair id, emission)` triples.
    ///
    /// States must already be group-major (groups non-decreasing). Slots
    /// are the tick's distinct pair ids in first-occurrence order; states
    /// repeating a pair id share a slot, exercising the kernels' fan-out.
    pub fn new(states: &[(u32, u32, f64)]) -> Self {
        assert!(!states.is_empty(), "toy tick needs at least one state");
        assert!(
            states.windows(2).all(|w| w[0].0 <= w[1].0),
            "toy states must be group-major"
        );
        let groups: Vec<u32> = states.iter().map(|s| s.0).collect();
        let pairs: Vec<u32> = states.iter().map(|s| s.1).collect();
        let emissions: Vec<f64> = states.iter().map(|s| s.2).collect();
        let mut runs = Vec::new();
        let mut start = 0usize;
        for j in 1..=groups.len() {
            if j == groups.len() || groups[j] != groups[start] {
                runs.push((groups[start], start as u32, j as u32));
                start = j;
            }
        }
        let mut uniq_pairs: Vec<u32> = Vec::new();
        let mut slots = Vec::with_capacity(pairs.len());
        for &p in &pairs {
            let s = uniq_pairs.iter().position(|&q| q == p).unwrap_or_else(|| {
                uniq_pairs.push(p);
                uniq_pairs.len() - 1
            });
            slots.push(s as u32);
        }
        Self {
            groups,
            pairs,
            emissions,
            runs,
            slots,
            uniq_pairs,
        }
    }
}

impl StateSpace for ToySpace {
    fn len(&self) -> usize {
        self.pairs.len()
    }

    fn n_slots(&self) -> usize {
        self.uniq_pairs.len()
    }

    fn slot(&self, j: usize) -> u32 {
        self.slots[j]
    }

    fn slot_pair(&self, s: usize) -> u32 {
        self.uniq_pairs[s]
    }

    fn pair(&self, j: usize) -> u32 {
        self.pairs[j]
    }

    fn group_of(&self, j: usize) -> u32 {
        self.groups[j]
    }

    fn runs(&self) -> &[(u32, u32, u32)] {
        &self.runs
    }

    fn emission(&self, j: usize) -> f64 {
        self.emissions[j]
    }
}

/// Hierarchical toy model: full continue/switch transition structure.
///
/// Tables are dense and explicit: `cont[dst pair][src pair]`,
/// `switch[dst pair][src group]`, `prior[group]`. For coherence with a
/// [`ToySpace`], every state's group must equal `pair_group` of its pair.
#[derive(Debug, Clone)]
pub struct ToyModel {
    /// First-tick log-prior per group.
    pub prior: Vec<f64>,
    /// Group of each destination pair id.
    pub pair_group: Vec<u32>,
    /// Continue rows: `cont[dst pair][src pair]`.
    pub cont: Vec<Vec<f64>>,
    /// Switch rows: `switch[dst pair][src group]`.
    pub switch: Vec<Vec<f64>>,
}

impl ScoreModel<f64> for ToyModel {
    const SWITCH: bool = true;

    fn init_score(&self, group: u32, _pair: u32, emission: f64) -> f64 {
        self.prior[group as usize] + emission
    }

    fn dest(&self, pair: u32) -> Dest<'_, f64> {
        Dest {
            group: self.pair_group[pair as usize],
            cont: &self.cont[pair as usize],
            switch: &self.switch[pair as usize],
        }
    }
}

/// Switch-free toy model: every source scores through the continue row,
/// as in the NH flat-product family.
#[derive(Debug, Clone)]
pub struct ToyFlatModel {
    /// Transition rows: `cont[dst pair][src pair]`.
    pub cont: Vec<Vec<f64>>,
}

impl ScoreModel<f64> for ToyFlatModel {
    const SWITCH: bool = false;

    fn init_score(&self, _group: u32, _pair: u32, emission: f64) -> f64 {
        emission
    }

    fn dest(&self, pair: u32) -> Dest<'_, f64> {
        Dest {
            group: pair,
            cont: &self.cont[pair as usize],
            switch: &[],
        }
    }
}

/// First-tick frontier by direct per-state evaluation.
pub fn naive_init<M: ScoreModel<f64>>(model: &M, cur: &ToySpace) -> Vec<f64> {
    (0..cur.len())
        .map(|j| model.init_score(cur.group_of(j), cur.pair(j), cur.emission(j)))
        .collect()
}

/// One DP step by the naive per-destination × per-source scan: no slot
/// sharing, no run-max cache — ascending sources, strict-`>`
/// first-argmax. With `keep`, only the listed survivors (ascending state
/// indices) are scanned; backpointers stay in full-frontier coordinates.
///
/// Returns `(v_next, back)`.
pub fn naive_step<M: ScoreModel<f64>>(
    model: &M,
    prev: &ToySpace,
    v: &[f64],
    keep: Option<&[u32]>,
    cur: &ToySpace,
) -> (Vec<f64>, Vec<u32>) {
    let full: Vec<u32> = (0..prev.len() as u32).collect();
    let sources = keep.unwrap_or(&full);
    let mut v_next = Vec::with_capacity(cur.len());
    let mut back = Vec::with_capacity(cur.len());
    for j in 0..cur.len() {
        let dest = model.dest(cur.pair(j));
        let mut best = f64::NEG_INFINITY;
        let mut arg = 0u32;
        for &jp in sources {
            let jp_us = jp as usize;
            let edge = if !M::SWITCH || prev.group_of(jp_us) == dest.group {
                dest.cont[prev.pair(jp_us) as usize]
            } else {
                dest.switch[prev.group_of(jp_us) as usize]
            };
            let score = v[jp_us] + edge;
            if score > best {
                best = score;
                arg = jp;
            }
        }
        v_next.push(best + cur.emission(j));
        back.push(arg);
    }
    (v_next, back)
}

/// Full naive decode: [`naive_init`], dense [`naive_step`]s, then the
/// engine's last-max termination tie-break, backtracked to one state
/// index per tick.
pub fn naive_decode<M: ScoreModel<f64>>(model: &M, ticks: &[ToySpace]) -> Vec<usize> {
    let mut v = naive_init(model, &ticks[0]);
    let mut backs: Vec<Vec<u32>> = Vec::new();
    for t in 1..ticks.len() {
        let (nv, nb) = naive_step(model, &ticks[t - 1], &v, None, &ticks[t]);
        v = nv;
        backs.push(nb);
    }
    // Termination ties break toward the *last* maximum, matching the
    // engine's frontier argmax.
    let mut j = 0usize;
    let mut best = f64::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x >= best {
            best = x;
            j = i;
        }
    }
    backtrack(ticks.len(), j, &backs)
}

/// The same decode driven through the generic kernels: `init_into`,
/// `step_dense_into`, and the engine's termination `argmax`.
pub fn engine_decode<M: ScoreModel<f64>>(model: &M, ticks: &[ToySpace]) -> Vec<usize> {
    let mut v: Vec<f64> = Vec::new();
    init_into(model, &ticks[0], &mut v);
    let mut step: StepScratch<f64> = StepScratch::default();
    let mut backs: Vec<Vec<u32>> = Vec::new();
    for t in 1..ticks.len() {
        let mut back = Vec::new();
        step_dense_into(model, &ticks[t - 1], &v, &ticks[t], &mut step, &mut back);
        step.swap_frontier(&mut v);
        backs.push(back);
    }
    backtrack(ticks.len(), argmax(&v).0, &backs)
}

fn backtrack(n_ticks: usize, last: usize, backs: &[Vec<u32>]) -> Vec<usize> {
    let mut j = last;
    let mut path = vec![0usize; n_ticks];
    for t in (1..n_ticks).rev() {
        path[t] = j;
        j = backs[t - 1][j] as usize;
    }
    path[0] = j;
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two groups, three pairs, hand-checkable tables: the generic engine
    /// and the naive reference agree on a fixed decode, including a
    /// pruned step and a deliberate tie.
    #[test]
    fn engine_and_naive_reference_agree_on_fixed_scenario() {
        let model = ToyModel {
            prior: vec![0.5, -0.25],
            pair_group: vec![0, 0, 1],
            cont: vec![
                vec![0.125, -1.0, 2.0],
                vec![1.5, 0.125, -0.5],
                vec![-2.0, 0.25, 1.0],
            ],
            switch: vec![vec![0.0, -0.5], vec![-0.5, 0.0], vec![0.25, 0.25]],
        };
        let ticks = vec![
            ToySpace::new(&[(0, 0, 1.0), (0, 1, 1.0), (1, 2, -0.5)]),
            ToySpace::new(&[(0, 0, 0.25), (0, 0, 0.25), (1, 2, 0.75)]),
            ToySpace::new(&[(0, 1, -0.125), (1, 2, 0.5)]),
        ];
        assert_eq!(engine_decode(&model, &ticks), naive_decode(&model, &ticks));

        let flat = ToyFlatModel {
            cont: model.cont.clone(),
        };
        assert_eq!(engine_decode(&flat, &ticks), naive_decode(&flat, &ticks));

        // One pruned step against the naive survivor scan.
        let v = naive_init(&model, &ticks[0]);
        let keep = [0u32, 2];
        let mut step: StepScratch<f64> = StepScratch::default();
        let mut back = Vec::new();
        cace_hdbn::trellis::step_pruned_into(
            &model, &ticks[0], &v, &keep, &ticks[1], &mut step, &mut back,
        );
        let mut got = Vec::new();
        step.swap_frontier(&mut got);
        let (want_v, want_back) = naive_step(&model, &ticks[0], &v, Some(&keep), &ticks[1]);
        assert_eq!(got, want_v);
        assert_eq!(back, want_back);
        // States 0 and 1 of tick 1 share pair 0, hence one slot.
        assert_eq!(ticks[1].n_slots(), 2);
        assert_eq!(got[0].to_bits(), got[1].to_bits());
    }
}
