//! # cace-testkit
//!
//! Shared fixtures for the workspace's integration-test suites (and the
//! differential/bench harnesses): the simulated-corpus builders and
//! trained-engine constructors that used to be copy-pasted across the
//! files under `tests/`, plus the strict bit-identity assertion the
//! equivalence suites (`batch == sequential`, `streamed == batch`,
//! `reloaded == trained`, `pruned-streamed == pruned-batch`) all share.
//!
//! Nothing here is clever — that is the point. A fixture duplicated per
//! test file drifts (each copy picks its own seeds, split ratios, and
//! assertion strictness); a fixture imported from one crate cannot.
//!
//! ```
//! use cace_core::Strategy;
//! use cace_testkit::{engine, tiny_corpus};
//!
//! let (train, test) = tiny_corpus(4, 60, 7);
//! let trained = engine(&train, Strategy::CorrelationConstraint);
//! let rec = trained.recognize(&test[0]).unwrap();
//! assert_eq!(rec.macros[0].len(), test[0].len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive;
pub mod toy;

use cace_behavior::session::train_test_split;
use cace_behavior::{cace_grammar, generate_cace_dataset, Session, SessionConfig};
use cace_core::{
    CaceConfig, CaceEngine, Lag, ParkedStream, Precision, Recognition, Strategy, StreamDecision,
};
use cace_hdbn::{HdbnConfig, HdbnParams, MicroCandidate, TickInput};
use cace_mining::constraint::{ConstraintMiner, LabeledSequence};

/// The standard integration-test corpus: `sessions` recordings of `ticks`
/// ticks under [`SessionConfig::tiny`], split 75/25 into (train, test).
///
/// Deterministic in `seed`; both halves are guaranteed non-empty by the
/// underlying split.
pub fn tiny_corpus(sessions: usize, ticks: usize, seed: u64) -> (Vec<Session>, Vec<Session>) {
    tiny_corpus_split(sessions, ticks, seed, 0.75)
}

/// [`tiny_corpus`] with an explicit train fraction.
pub fn tiny_corpus_split(
    sessions: usize,
    ticks: usize,
    seed: u64,
    train_fraction: f64,
) -> (Vec<Session>, Vec<Session>) {
    let data = generate_cace_dataset(
        &cace_grammar(),
        1,
        sessions,
        &SessionConfig::tiny().with_ticks(ticks),
        seed,
    );
    train_test_split(data, train_fraction)
}

/// Trains an engine with the default configuration under `strategy`.
///
/// # Panics
/// Panics if training fails — the simulated corpora are constructed so it
/// cannot, and a fixture that fails to build should abort the test loudly.
pub fn engine(train: &[Session], strategy: Strategy) -> CaceEngine {
    engine_with(train, &CaceConfig::default().with_strategy(strategy))
}

/// Trains an engine with an explicit configuration.
///
/// Honors the `CACE_FAST32=1` environment gate: when set, the decoder's
/// scoring precision is flipped to [`Precision::Fast32`] before training,
/// so the whole integration suite can be swept through the `f32` lane
/// without touching any test (CI runs the sweep as a separate job; the
/// exact-lane bit-identity suites that compare against naive `f64`
/// references are skipped there by name).
///
/// # Panics
/// Panics if training fails (see [`engine`]).
pub fn engine_with(train: &[Session], config: &CaceConfig) -> CaceEngine {
    let mut config = config.clone();
    if std::env::var("CACE_FAST32").is_ok_and(|v| v == "1") {
        config.decoder.precision = Precision::Fast32;
    }
    CaceEngine::train(train, &config).expect("testkit: training succeeds on simulated data")
}

/// Fraction of per-tick macro decisions on which two recognitions agree,
/// pooled over both users — the per-tick half of the f32-vs-f64 tolerance
/// harness.
///
/// # Panics
/// Panics if the two recognitions decode different tick counts.
pub fn tick_agreement(a: &Recognition, b: &Recognition) -> f64 {
    let mut total = 0usize;
    let mut agree = 0usize;
    for u in 0..2 {
        assert_eq!(
            a.macros[u].len(),
            b.macros[u].len(),
            "tick_agreement: user {u} path lengths differ"
        );
        total += a.macros[u].len();
        agree += a.macros[u]
            .iter()
            .zip(&b.macros[u])
            .filter(|(x, y)| x == y)
            .count();
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

/// Macro-averaged per-class accuracy of decoded macros against ground
/// truth, pooled over both users: mean over classes (that occur in the
/// truth) of `correct / occurrences` — the paper's fig. 9 metric, shared
/// by the bench harness and the tolerance tests.
pub fn macro_accuracy(truth: &[[Vec<usize>; 2]], decoded: &[[Vec<usize>; 2]]) -> f64 {
    let mut correct = std::collections::HashMap::new();
    let mut total = std::collections::HashMap::new();
    for (t, d) in truth.iter().zip(decoded) {
        for u in 0..2 {
            for (&gt, &got) in t[u].iter().zip(&d[u]) {
                *total.entry(gt).or_insert(0u64) += 1;
                if gt == got {
                    *correct.entry(gt).or_insert(0u64) += 1;
                }
            }
        }
    }
    if total.is_empty() {
        return 0.0;
    }
    let sum: f64 = total
        .iter()
        .map(|(class, &n)| correct.get(class).copied().unwrap_or(0) as f64 / n as f64)
        .sum();
    sum / total.len() as f64
}

/// Asserts the f32-lane tolerance contract between an exact (`f64`) and a
/// fast (`f32`) recognition run over the same sessions: per-tick macro
/// agreement ≥ `min_agreement` (pooled over ticks and users) and
/// macro-averaged accuracy within `max_accuracy_gap` of the exact lane.
///
/// # Panics
/// Panics with `label` if either bound is violated.
pub fn assert_lane_tolerance(
    truth: &[[Vec<usize>; 2]],
    exact: &[Recognition],
    fast: &[Recognition],
    min_agreement: f64,
    max_accuracy_gap: f64,
    label: &str,
) {
    assert_eq!(exact.len(), fast.len(), "{label}: session counts");
    let mut agree_num = 0.0;
    let mut agree_den = 0.0;
    for (e, f) in exact.iter().zip(fast) {
        let ticks = (e.macros[0].len() + e.macros[1].len()) as f64;
        agree_num += tick_agreement(e, f) * ticks;
        agree_den += ticks;
    }
    let agreement = if agree_den > 0.0 {
        agree_num / agree_den
    } else {
        1.0
    };
    assert!(
        agreement >= min_agreement,
        "{label}: per-tick agreement {agreement:.4} < {min_agreement}"
    );
    let exact_paths: Vec<[Vec<usize>; 2]> = exact.iter().map(|r| r.macros.clone()).collect();
    let fast_paths: Vec<[Vec<usize>; 2]> = fast.iter().map(|r| r.macros.clone()).collect();
    let acc_exact = macro_accuracy(truth, &exact_paths);
    let acc_fast = macro_accuracy(truth, &fast_paths);
    assert!(
        (acc_exact - acc_fast).abs() <= max_accuracy_gap,
        "{label}: macro accuracy f64 {acc_exact:.4} vs f32 {acc_fast:.4} \
         differs by more than {max_accuracy_gap}"
    );
}

/// Asserts two recognitions are bit-identical in every deterministic
/// field: decoded macros, both overhead counters, rule firings, and the
/// exact bits of `mean_joint_size` (only wall-clock may differ).
///
/// This is the shared contract of the equivalence suites; `label` names
/// the failing configuration in the panic message.
///
/// # Panics
/// Panics with `label` on the first differing field.
pub fn assert_recognitions_identical(actual: &Recognition, expected: &Recognition, label: &str) {
    assert_eq!(actual.macros, expected.macros, "{label}: macros");
    assert_eq!(
        actual.states_explored, expected.states_explored,
        "{label}: states_explored"
    );
    assert_eq!(
        actual.transition_ops, expected.transition_ops,
        "{label}: transition_ops"
    );
    assert_eq!(
        actual.rules_fired, expected.rules_fired,
        "{label}: rules_fired"
    );
    assert_eq!(
        actual.mean_joint_size.to_bits(),
        expected.mean_joint_size.to_bits(),
        "{label}: mean_joint_size"
    );
}

/// Drives a session through a streaming recognizer, interrupting it with
/// a full park → serialize → reload → resume cycle *before pushing* every
/// tick index listed in `park_at` (an index equal to the session length
/// parks once more right before `finish`). An empty `park_at` behaves
/// exactly like [`cace_core::stream_session`].
///
/// The parked state travels through its versioned snapshot **string** —
/// the byte form the serving tier stores for an evicted home — not just
/// the in-memory struct, so every listed position also exercises the
/// serialization layer.
///
/// # Panics
/// Panics if any push, park round-trip, resume, or finalization fails —
/// the park/resume equivalence suites want those failures loud.
pub fn stream_session_with_parks(
    engine: &CaceEngine,
    session: &Session,
    lag: Lag,
    park_at: &[usize],
) -> (Vec<StreamDecision>, Recognition) {
    let park_cycle = |stream: &cace_core::StreamingRecognizer<'_>| {
        let bytes = stream.park().to_snapshot_string();
        let parked = ParkedStream::from_snapshot_str(&bytes).expect("testkit: parked bytes reload");
        engine
            .resume(&parked)
            .expect("testkit: parked stream resumes")
    };
    let mut stream = engine.stream(lag);
    let mut decisions = Vec::new();
    for (t, tick) in session.ticks.iter().enumerate() {
        if park_at.contains(&t) {
            stream = park_cycle(&stream);
        }
        if let Some(d) = stream.push(&tick.observed).expect("testkit: stream push") {
            decisions.push(d);
        }
    }
    if park_at.contains(&session.len()) {
        stream = park_cycle(&stream);
    }
    let recognition = stream.finish().expect("testkit: stream finish");
    (decisions, recognition)
}

/// Toy HDBN parameters over a two-activity world where activity `k` pairs
/// with posture `k` and location `k`, both residents synchronized in runs
/// of 10 ticks — the standard decoder-level fixture (mirrors the in-crate
/// fixtures of `cace-hdbn`'s unit tests, exported here for the
/// cross-crate differential suites).
pub fn toy_two_activity_params(coupled: bool) -> HdbnParams {
    let mut macros = Vec::new();
    for run in 0..40 {
        for _ in 0..10 {
            macros.push(run % 2);
        }
    }
    let n = macros.len();
    let seq = LabeledSequence {
        macros: [macros.clone(), macros.clone()],
        posturals: [macros.clone(), macros.clone()],
        gesturals: [vec![0; n], vec![0; n]],
        locations: [macros.clone(), macros],
    };
    let stats = ConstraintMiner {
        laplace: 0.1,
        n_macro: 2,
        n_postural: 2,
        n_gestural: 2,
        n_location: 2,
    }
    .mine(&[seq])
    .expect("testkit: toy stats mine");
    let config = if coupled {
        HdbnConfig::default()
    } else {
        HdbnConfig::uncoupled()
    };
    HdbnParams::new(stats, config).expect("testkit: toy params build")
}

/// A decoder tick whose observations favor micro state `fav` for both
/// users by `strength` log-odds (companion of
/// [`toy_two_activity_params`]).
pub fn toy_obs_tick(fav: usize, strength: f64) -> TickInput {
    let cands = |fav: usize| -> Vec<MicroCandidate> {
        (0..2)
            .map(|p| MicroCandidate {
                postural: p,
                gestural: Some(0),
                location: p,
                obs_loglik: if p == fav { 0.0 } else { -strength },
            })
            .collect()
    };
    TickInput {
        candidates: [cands(fav), cands(fav)],
        macro_candidates: [None, None],
        macro_bonus: Vec::new(),
    }
}

/// A mildly adversarial tick stream over the toy world: activity switches
/// at the midpoint, with periodic weak and contradictory observations so
/// decoders must actually smooth.
pub fn toy_glitchy_ticks(len: usize) -> Vec<TickInput> {
    (0..len)
        .map(|t| {
            let m = usize::from(t >= len / 2);
            let strength = if t % 7 == 3 { 0.4 } else { 3.0 };
            toy_obs_tick(if t % 11 == 5 { 1 - m } else { m }, strength)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_split() {
        let (train_a, test_a) = tiny_corpus(4, 40, 9);
        let (train_b, test_b) = tiny_corpus(4, 40, 9);
        assert_eq!(train_a.len(), train_b.len());
        assert_eq!(test_a.len(), test_b.len());
        assert!(!train_a.is_empty() && !test_a.is_empty());
        assert_eq!(train_a[0].len(), 40);
    }

    #[test]
    fn identical_recognitions_pass_the_assertion() {
        let (train, test) = tiny_corpus(3, 50, 10);
        let e = engine(&train, Strategy::CorrelationConstraint);
        let a = e.recognize(&test[0]).unwrap();
        let b = e.recognize(&test[0]).unwrap();
        assert_recognitions_identical(&a, &b, "self");
    }

    #[test]
    #[should_panic(expected = "differs: macros")]
    fn differing_recognitions_fail_the_assertion() {
        let (train, test) = tiny_corpus(3, 50, 10);
        let e = engine(&train, Strategy::CorrelationConstraint);
        let a = e.recognize(&test[0]).unwrap();
        let mut b = a.clone();
        b.macros[0][0] = (b.macros[0][0] + 1) % e.n_macro();
        assert_recognitions_identical(&a, &b, "differs");
    }

    #[test]
    fn toy_world_decodes() {
        use cace_hdbn::CoupledHdbn;
        let model = CoupledHdbn::new(toy_two_activity_params(true));
        let path = model.viterbi(&toy_glitchy_ticks(30)).unwrap();
        assert_eq!(path.macros[0].len(), 30);
    }
}
