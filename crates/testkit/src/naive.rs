//! Naive-scoring reference decoders: the pre-score-table hot path, kept
//! as an executable specification.
//!
//! The production decoders in `cace-hdbn` score every trellis edge through
//! the dense precomputed [`ScoreTables`](cace_hdbn::ScoreTables) and run
//! their step kernels over reused `TrellisArena` buffers. The functions
//! here reproduce the *historical* implementations — direct
//! [`HdbnParams::transition_score`] / [`HdbnParams::hierarchy_score`]
//! calls per edge, fresh fold buffers per column, per-tick `Vec`
//! allocations — with the exact same fold order and tie-breaking.
//!
//! Two consumers:
//!
//! * `tests/score_tables.rs` asserts the production decoders are
//!   **bit-identical** to these references over random mined statistics —
//!   the differential gate for the dense-table scoring path.
//! * `crates/bench/benches/score_tables.rs` measures them as the "naive
//!   scoring" baseline that the table path's per-tick speedup is claimed
//!   against.

use cace_hdbn::forward::normalize_log;
use cace_hdbn::single::ExpectedCounts;
use cace_hdbn::{log_sum_exp, HdbnParams, TickInput};

/// One chain's per-tick state enumeration, exactly as the decoders build
/// it: macro-major over the tick's allowed macros × candidates.
struct NaiveSlice {
    activities: Vec<usize>,
    cands: Vec<usize>,
    posturals: Vec<usize>,
    emissions: Vec<f64>,
}

fn naive_slice(p: &HdbnParams, tick: &TickInput, user: usize) -> NaiveSlice {
    let macros = tick.macros_for(user, p.n_macro());
    let n = macros.len() * tick.candidates[user].len();
    let mut slice = NaiveSlice {
        activities: Vec::with_capacity(n),
        cands: Vec::with_capacity(n),
        posturals: Vec::with_capacity(n),
        emissions: Vec::with_capacity(n),
    };
    for &a in &macros {
        for (c, cand) in tick.candidates[user].iter().enumerate() {
            slice.activities.push(a);
            slice.cands.push(c);
            slice.posturals.push(cand.postural);
            slice.emissions.push(
                cand.obs_loglik
                    + tick.bonus(a)
                    + p.hierarchy_score(a, cand.postural, cand.gestural, cand.location),
            );
        }
    }
    slice
}

/// The reference exact coupled decode: `(per-user macro paths, log_prob)`.
///
/// A faithful copy of the pre-score-table dense two-pass fold — chain 2
/// then chain 1, `f2_col`/`f1_col` collected fresh per column via
/// [`HdbnParams::transition_score`] — so the production
/// [`CoupledHdbn::viterbi`](cace_hdbn::CoupledHdbn::viterbi) (under
/// `Beam::Exact`) must match it float for float.
///
/// # Panics
/// Panics on empty input or a tick with no candidates (the references
/// assume pre-validated input).
pub fn naive_coupled_viterbi(p: &HdbnParams, ticks: &[TickInput]) -> ([Vec<usize>; 2], f64) {
    assert!(!ticks.is_empty(), "naive decode needs at least one tick");
    let mut slices: Vec<(NaiveSlice, NaiveSlice)> = Vec::with_capacity(ticks.len());
    slices.push((naive_slice(p, &ticks[0], 0), naive_slice(p, &ticks[0], 1)));

    // First frontier: emissions + priors + coupling, flattened j1·|S2|+j2.
    let (s1, s2) = &slices[0];
    let mut v = Vec::with_capacity(s1.activities.len() * s2.activities.len());
    for (j1, &a1) in s1.activities.iter().enumerate() {
        let base1 = s1.emissions[j1] + p.log_prior[a1];
        for (j2, &a2) in s2.activities.iter().enumerate() {
            let base2 = s2.emissions[j2] + p.log_prior[a2];
            v.push(base1 + base2 + p.coupling_score(a1, a2));
        }
    }

    let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
    for tick in ticks.iter().skip(1) {
        let cur1 = naive_slice(p, tick, 0);
        let cur2 = naive_slice(p, tick, 1);
        let (prev1, prev2) = slices.last().expect("nonempty");
        let (k1, k2) = (prev1.activities.len(), prev2.activities.len());
        let (m1, m2) = (cur1.activities.len(), cur2.activities.len());

        // Pass 1 — fold chain 2.
        let mut w = vec![f64::NEG_INFINITY; k1 * m2];
        let mut w_arg = vec![0u32; k1 * m2];
        for (j2, &a2) in cur2.activities.iter().enumerate() {
            let f2_col: Vec<f64> = (0..k2)
                .map(|j2p| {
                    p.transition_score(
                        prev2.activities[j2p],
                        prev2.posturals[j2p],
                        a2,
                        cur2.posturals[j2],
                    )
                })
                .collect();
            for j1p in 0..k1 {
                let row = &v[j1p * k2..(j1p + 1) * k2];
                let mut best = f64::NEG_INFINITY;
                let mut best_arg = 0u32;
                for (j2p, (&vv, &f2)) in row.iter().zip(&f2_col).enumerate() {
                    let score = vv + f2;
                    if score > best {
                        best = score;
                        best_arg = j2p as u32;
                    }
                }
                w[j1p * m2 + j2] = best;
                w_arg[j1p * m2 + j2] = best_arg;
            }
        }

        // Pass 2 — fold chain 1, plus emissions and coupling.
        let mut v_new = vec![f64::NEG_INFINITY; m1 * m2];
        let mut back = vec![0u32; m1 * m2];
        for (j1, &a1) in cur1.activities.iter().enumerate() {
            let f1_col: Vec<f64> = (0..k1)
                .map(|j1p| {
                    p.transition_score(
                        prev1.activities[j1p],
                        prev1.posturals[j1p],
                        a1,
                        cur1.posturals[j1],
                    )
                })
                .collect();
            for (j2, &a2) in cur2.activities.iter().enumerate() {
                let mut best = f64::NEG_INFINITY;
                let mut best_j1p = 0usize;
                for (j1p, &f1) in f1_col.iter().enumerate() {
                    let score = w[j1p * m2 + j2] + f1;
                    if score > best {
                        best = score;
                        best_j1p = j1p;
                    }
                }
                let emit = cur1.emissions[j1] + cur2.emissions[j2] + p.coupling_score(a1, a2);
                v_new[j1 * m2 + j2] = best + emit;
                let j2p = w_arg[best_j1p * m2 + j2];
                back[j1 * m2 + j2] = (best_j1p as u32) * (k2 as u32) + j2p;
            }
        }
        v = v_new;
        backptrs.push(back);
        slices.push((cur1, cur2));
    }

    let (mut flat, log_prob) = v
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, &s)| (i, s))
        .expect("nonempty trellis");
    let t_total = ticks.len();
    let mut macros = [vec![0usize; t_total], vec![0usize; t_total]];
    let mut m2_cur = slices.last().expect("nonempty").1.activities.len();
    for t in (0..t_total).rev() {
        let (s1, s2) = &slices[t];
        macros[0][t] = s1.activities[flat / m2_cur];
        macros[1][t] = s2.activities[flat % m2_cur];
        if t > 0 {
            flat = backptrs[t][flat] as usize;
            m2_cur = slices[t - 1].1.activities.len();
        }
    }
    (macros, log_prob)
}

/// The reference exact single-chain decode: `(macro path, log_prob)` —
/// the pre-score-table `chain_step` loop, transition-scored per edge.
///
/// # Panics
/// Same conditions as [`naive_coupled_viterbi`].
pub fn naive_single_viterbi(p: &HdbnParams, ticks: &[TickInput], user: usize) -> (Vec<usize>, f64) {
    assert!(!ticks.is_empty(), "naive decode needs at least one tick");
    let mut slices: Vec<NaiveSlice> = Vec::with_capacity(ticks.len());
    slices.push(naive_slice(p, &ticks[0], user));
    let mut v: Vec<f64> = slices[0]
        .activities
        .iter()
        .zip(&slices[0].emissions)
        .map(|(&a, &e)| p.log_prior[a] + e)
        .collect();

    let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
    for tick in ticks.iter().skip(1) {
        let cur = naive_slice(p, tick, user);
        let prev = slices.last().expect("nonempty");
        let mut v_new = vec![f64::NEG_INFINITY; cur.activities.len()];
        let mut back = vec![0u32; cur.activities.len()];
        for (j, (&a, &e)) in cur.activities.iter().zip(&cur.emissions).enumerate() {
            let p_new = cur.posturals[j];
            let mut best = f64::NEG_INFINITY;
            let mut best_arg = 0u32;
            for (jp, &ap) in prev.activities.iter().enumerate() {
                let score = v[jp] + p.transition_score(ap, prev.posturals[jp], a, p_new);
                if score > best {
                    best = score;
                    best_arg = jp as u32;
                }
            }
            v_new[j] = best + e;
            back[j] = best_arg;
        }
        v = v_new;
        backptrs.push(back);
        slices.push(cur);
    }

    let (mut j, log_prob) = v
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, &s)| (i, s))
        .expect("nonempty trellis");
    let mut macros = vec![0usize; ticks.len()];
    for t in (0..ticks.len()).rev() {
        macros[t] = slices[t].activities[j];
        if t > 0 {
            j = backptrs[t][j] as usize;
        }
    }
    (macros, log_prob)
}

/// The reference exact forward–backward: `(gamma, log_likelihood)` — the
/// pre-score-table recursion with per-state `terms` vectors and direct
/// transition scoring.
///
/// # Panics
/// Same conditions as [`naive_coupled_viterbi`].
pub fn naive_forward_backward(
    p: &HdbnParams,
    ticks: &[TickInput],
    user: usize,
) -> (Vec<Vec<f64>>, f64) {
    assert!(!ticks.is_empty(), "naive forward-backward needs ticks");
    let slices: Vec<NaiveSlice> = ticks.iter().map(|t| naive_slice(p, t, user)).collect();

    let mut log_z = 0.0;
    let mut alphas: Vec<Vec<f64>> = Vec::with_capacity(ticks.len());
    let mut alpha: Vec<f64> = slices[0]
        .activities
        .iter()
        .zip(&slices[0].emissions)
        .map(|(&a, &e)| p.log_prior[a] + e)
        .collect();
    log_z += normalize_log(&mut alpha);
    alphas.push(alpha);

    for t in 1..ticks.len() {
        let cur = &slices[t];
        let prev = &slices[t - 1];
        let mut next = vec![f64::NEG_INFINITY; cur.activities.len()];
        for (j, (&a, &e)) in cur.activities.iter().zip(&cur.emissions).enumerate() {
            let terms: Vec<f64> = prev
                .activities
                .iter()
                .enumerate()
                .map(|(jp, &ap)| {
                    alphas[t - 1][jp].max(1e-300).ln()
                        + p.transition_score(ap, prev.posturals[jp], a, cur.posturals[j])
                })
                .collect();
            next[j] = log_sum_exp(&terms) + e;
        }
        log_z += normalize_log(&mut next);
        alphas.push(next);
    }

    let mut betas: Vec<Vec<f64>> = vec![Vec::new(); ticks.len()];
    let last = ticks.len() - 1;
    betas[last] = vec![1.0; slices[last].activities.len()];
    for t in (0..last).rev() {
        let cur = &slices[t];
        let nxt = &slices[t + 1];
        let mut beta = vec![f64::NEG_INFINITY; cur.activities.len()];
        for (j, &a) in cur.activities.iter().enumerate() {
            let terms: Vec<f64> = nxt
                .activities
                .iter()
                .enumerate()
                .map(|(jn, &an)| {
                    betas[t + 1][jn].max(1e-300).ln()
                        + p.transition_score(a, cur.posturals[j], an, nxt.posturals[jn])
                        + nxt.emissions[jn]
                })
                .collect();
            beta[j] = log_sum_exp(&terms);
        }
        normalize_log(&mut beta);
        betas[t] = beta;
    }

    let gamma: Vec<Vec<f64>> = alphas
        .iter()
        .zip(&betas)
        .map(|(a, b)| {
            let mut g: Vec<f64> = a.iter().zip(b).map(|(x, y)| x * y).collect();
            let total: f64 = g.iter().sum();
            if total > 0.0 {
                for v in &mut g {
                    *v /= total;
                }
            }
            g
        })
        .collect();
    (gamma, log_z)
}

/// The reference E-step accumulation for one sequence/user into `counts` —
/// the pre-score-table unary + xi loops over
/// [`naive_forward_backward`]'s posteriors.
///
/// # Panics
/// Same conditions as [`naive_coupled_viterbi`].
pub fn naive_accumulate_counts(
    p: &HdbnParams,
    ticks: &[TickInput],
    user: usize,
    counts: &mut ExpectedCounts,
) {
    let (gamma, log_likelihood) = naive_forward_backward(p, ticks, user);
    counts.log_likelihood += log_likelihood;
    let slices: Vec<NaiveSlice> = ticks.iter().map(|t| naive_slice(p, t, user)).collect();

    for (t, slice) in slices.iter().enumerate() {
        for (j, &a) in slice.activities.iter().enumerate() {
            let g = gamma[t][j];
            if g <= 0.0 {
                continue;
            }
            let cand = ticks[t].candidates[user][slice.cands[j]];
            if t == 0 {
                counts.prior[a] += g;
            }
            counts.post[a][cand.postural] += g;
            counts.loc[a][cand.location] += g;
            if let Some(gest) = cand.gestural {
                counts.gest[a][gest] += g;
            }
        }
    }

    for t in 1..ticks.len() {
        let prev = &slices[t - 1];
        let cur = &slices[t];
        let mut xi = vec![0.0; prev.activities.len() * cur.activities.len()];
        let mut total = 0.0;
        for (jp, &ap) in prev.activities.iter().enumerate() {
            let gp = gamma[t - 1][jp];
            if gp <= 0.0 {
                continue;
            }
            for (j, &a) in cur.activities.iter().enumerate() {
                let gc = gamma[t][j];
                if gc <= 0.0 {
                    continue;
                }
                let w = gp
                    * gc
                    * p.transition_score(ap, prev.posturals[jp], a, cur.posturals[j])
                        .exp()
                        .max(1e-300);
                xi[jp * cur.activities.len() + j] = w;
                total += w;
            }
        }
        if total <= 0.0 {
            continue;
        }
        for (jp, &ap) in prev.activities.iter().enumerate() {
            for (j, &a) in cur.activities.iter().enumerate() {
                let w = xi[jp * cur.activities.len() + j] / total;
                if w <= 0.0 {
                    continue;
                }
                counts.trans[ap][a] += w;
                if ap == a {
                    counts.cont[a] += w;
                    counts.post_trans[prev.posturals[jp]][cur.posturals[j]] += w;
                } else {
                    counts.end[ap] += w;
                }
            }
        }
    }
}
