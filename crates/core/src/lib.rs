//! # cace-core
//!
//! The CACE engine: the end-to-end context-processing pipeline of the
//! paper's Fig 2.
//!
//! 1. **Sensing planar** — simulated by [`cace_sensing`] /
//!    [`cace_behavior`].
//! 2. **Context planar** — frame features via [`cace_features`], micro
//!    classifiers (random forests) trained here ([`classifiers`]).
//! 3. **State-space creation** — per-tick candidate sets plus observation
//!    scores ([`statespace`]).
//! 4. **State-space reduction** — the pruning engine driven by mined (or
//!    initial) rules ([`cace_mining`], wired in [`engine`]).
//! 5. **Loosely-coupled HDBN** — [`cace_hdbn`] parameters from the
//!    constraint miner, optionally refined by EM.
//! 6. **Inference engine** — joint Viterbi decoding with overhead
//!    accounting, plus a rayon-parallel multi-session fan-out ([`batch`])
//!    that shares the trained model read-only across cores, plus an online
//!    fixed-lag path ([`stream`]) that consumes ticks as they arrive and a
//!    [`StreamRouter`] that multiplexes many concurrent homes.
//!
//! The four pruning strategies of §VII-G (NH, NCR, NCS, C2) are expressed
//! as [`Strategy`] values; Fig 8(a)'s modality ablations as
//! [`cace_model::StateMask`]s.
//!
//! ```no_run
//! use cace_behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
//! use cace_core::{CaceConfig, CaceEngine};
//!
//! let grammar = cace_grammar();
//! let sessions = generate_cace_dataset(&grammar, 1, 3, &SessionConfig::tiny(), 7);
//! let (train, test) = cace_behavior::session::train_test_split(sessions, 0.67);
//! let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
//! let recognition = engine.recognize(&test[0]).unwrap();
//! assert_eq!(recognition.macros[0].len(), test[0].len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod classifiers;
pub mod engine;
pub mod evidence;
mod nh;
pub mod router;
pub mod snapshot;
pub mod statespace;
pub mod strategy;
pub mod stream;
pub mod transactions;

pub use batch::BatchReport;
pub use cace_hdbn::{Beam, DecoderConfig, Lag, Precision};
pub use classifiers::MicroClassifiers;
pub use engine::{CaceConfig, CaceEngine, Recognition};
pub use router::{
    AdaptationPolicy, HomeStatus, RouterStats, ShardStats, ShardedRouter, DEFAULT_SHARDS,
};
pub use snapshot::ModelRecord;
pub use strategy::Strategy;
pub use stream::{
    push_cohort, resume_shared, stream_session, stream_shared, CohortOutcome, HomeRound,
    ParkedStream, StreamDecision, StreamRouter, StreamingRecognizer,
};
