//! The NH (Naive-HMM) flat product decoder, factored into per-tick DP
//! steps.
//!
//! NH refuses every piece of CACE structure: no hierarchy, no miners, no
//! coupling — just a flat Viterbi over the (macro × micro-beam) product
//! space per user, with macro emissions classified directly from frame
//! features. The step functions here are shared between the batch decoder
//! (`CaceEngine::recognize` under [`crate::Strategy::NaiveHmm`]) and the
//! streaming [`OnlineFlat`] frontier, which keeps the two bit-identical.

use std::collections::VecDeque;

use cace_hdbn::{Beam, BeamScratch, Lag, TickInput};

/// One flat product state: (macro activity, micro-candidate index).
pub(crate) type FlatState = (usize, usize);

/// The tick's product state list, enumerated macro-major.
pub(crate) fn states(input: &TickInput, user: usize, n_macro: usize) -> Vec<FlatState> {
    let cands = &input.candidates[user];
    (0..n_macro)
        .flat_map(|a| (0..cands.len()).map(move |c| (a, c)))
        .collect()
}

/// Emission scores aligned with [`states`]: direct macro classification
/// plus the item bonus plus the candidate observation log-likelihood.
pub(crate) fn emissions(
    input: &TickInput,
    user: usize,
    states: &[FlatState],
    macro_lp: &[f64],
) -> Vec<f64> {
    states
        .iter()
        .map(|&(a, c)| macro_lp[a] + input.bonus(a) + input.candidates[user][c].obs_loglik)
        .collect()
}

/// One flat DP step over the macro transition table.
pub(crate) fn step(
    log_trans: &[Vec<f64>],
    prev: &[FlatState],
    v: &[f64],
    cur: &[FlatState],
    emit: &[f64],
) -> (Vec<f64>, Vec<u32>) {
    let mut v_new = vec![f64::NEG_INFINITY; cur.len()];
    let mut back = vec![0u32; cur.len()];
    for (j, &(a, _)) in cur.iter().enumerate() {
        let mut best = f64::NEG_INFINITY;
        let mut best_arg = 0u32;
        for (jp, &(ap, _)) in prev.iter().enumerate() {
            let score = v[jp] + log_trans[ap][a];
            if score > best {
                best = score;
                best_arg = jp as u32;
            }
        }
        v_new[j] = best + emit[j];
        back[j] = best_arg;
    }
    (v_new, back)
}

/// [`step`] restricted to a pruned previous frontier (`keep`: surviving
/// state indices, sorted ascending). Backpointers stay in full-frontier
/// coordinates.
pub(crate) fn step_pruned(
    log_trans: &[Vec<f64>],
    prev: &[FlatState],
    v: &[f64],
    keep: &[u32],
    cur: &[FlatState],
    emit: &[f64],
) -> (Vec<f64>, Vec<u32>) {
    let mut v_new = vec![f64::NEG_INFINITY; cur.len()];
    let mut back = vec![0u32; cur.len()];
    for (j, &(a, _)) in cur.iter().enumerate() {
        let mut best = f64::NEG_INFINITY;
        let mut best_arg = 0u32;
        for &jp in keep {
            let (ap, _) = prev[jp as usize];
            let score = v[jp as usize] + log_trans[ap][a];
            if score > best {
                best = score;
                best_arg = jp;
            }
        }
        v_new[j] = best + emit[j];
        back[j] = best_arg;
    }
    (v_new, back)
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .expect("nonempty trellis")
}

struct FlatEntry {
    states: Vec<FlatState>,
    back: Vec<u32>,
}

/// Streaming NH frontier for one user, mirroring the online decoders in
/// `cace-hdbn`: push per-tick (states, emissions), emit fixed-lag macro
/// decisions, finalize into the full macro path plus overhead accounting.
pub(crate) struct OnlineFlat<'a> {
    log_trans: &'a [Vec<f64>],
    lag: Lag,
    beam: Beam,
    v: Vec<f64>,
    window: VecDeque<FlatEntry>,
    base: usize,
    pushed: usize,
    emitted: Vec<usize>,
    states_explored: u64,
    transition_ops: u64,
    scratch: BeamScratch,
    pruned: bool,
}

impl<'a> OnlineFlat<'a> {
    pub(crate) fn new(log_trans: &'a [Vec<f64>], lag: Lag, beam: Beam) -> Self {
        Self {
            log_trans,
            lag,
            beam,
            v: Vec::new(),
            window: VecDeque::new(),
            base: 0,
            pushed: 0,
            emitted: Vec::new(),
            states_explored: 0,
            transition_ops: 0,
            scratch: BeamScratch::new(),
            pruned: false,
        }
    }

    /// Consumes one tick's state list and aligned emissions; returns the
    /// ripened `(tick, macro)` decision, if any.
    pub(crate) fn push(
        &mut self,
        states: Vec<FlatState>,
        emit: Vec<f64>,
    ) -> Option<(usize, usize)> {
        self.states_explored += states.len() as u64;
        let back = if self.pushed == 0 {
            self.v = emit;
            Vec::new()
        } else {
            let prev = self.window.back().expect("nonempty window");
            let (v_new, back) = if self.pruned {
                self.transition_ops += (states.len() * self.scratch.keep().len()) as u64;
                step_pruned(
                    self.log_trans,
                    &prev.states,
                    &self.v,
                    self.scratch.keep(),
                    &states,
                    &emit,
                )
            } else {
                self.transition_ops += (states.len() * prev.states.len()) as u64;
                step(self.log_trans, &prev.states, &self.v, &states, &emit)
            };
            self.v = v_new;
            back
        };
        self.pruned = self.beam.select_log(&self.v, &mut self.scratch);
        self.window.push_back(FlatEntry { states, back });
        self.pushed += 1;
        self.emit_ready()
    }

    fn state_at(&self, idx: usize) -> usize {
        let mut j = argmax(&self.v);
        for i in (idx + 1..self.window.len()).rev() {
            j = self.window[i].back[j] as usize;
        }
        j
    }

    fn emit_ready(&mut self) -> Option<(usize, usize)> {
        let Lag::Fixed(lag) = self.lag else {
            return None;
        };
        let last = self.pushed - 1;
        if last < lag {
            return None;
        }
        let tick = last - lag;
        let idx = tick - self.base;
        let j = self.state_at(idx);
        let macro_id = self.window[idx].states[j].0;
        self.emitted.push(macro_id);
        while self.base <= tick && self.window.len() > 1 {
            self.window.pop_front();
            self.base += 1;
        }
        Some((tick, macro_id))
    }

    /// Ends the stream: `(macro path, states explored, transition ops)`.
    /// Returns `None` if no tick was ever pushed.
    pub(crate) fn finalize(mut self) -> Option<(Vec<usize>, u64, u64)> {
        if self.pushed == 0 {
            return None;
        }
        let mut j = argmax(&self.v);
        let committed = self.emitted.len();
        let mut tail = Vec::with_capacity(self.pushed - committed);
        for t in (committed..self.pushed).rev() {
            let idx = t - self.base;
            tail.push(self.window[idx].states[j].0);
            if idx > 0 {
                j = self.window[idx].back[j] as usize;
            }
        }
        tail.reverse();
        let mut macros = std::mem::take(&mut self.emitted);
        macros.extend(tail);
        Some((macros, self.states_explored, self.transition_ops))
    }
}
