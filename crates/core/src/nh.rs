//! The NH (Naive-HMM) flat product decoder, factored into per-tick DP
//! steps.
//!
//! NH refuses every piece of CACE structure: no hierarchy, no miners, no
//! coupling — just a flat Viterbi over the (macro × micro-beam) product
//! space per user, with macro emissions classified directly from frame
//! features. The step functions here are shared between the batch decoder
//! (`CaceEngine::recognize` under [`crate::Strategy::NaiveHmm`]) and the
//! streaming [`OnlineFlat`] frontier, which keeps the two bit-identical.
//!
//! Like the hierarchical decoders in `cace-hdbn`, NH scores through a
//! dense flat table: [`FlatTable`] stores the macro transition matrix
//! dst-major, so each new state's transition column is one contiguous
//! `n_macro`-entry row — no nested `Vec<Vec<f64>>` pointer chase on the
//! hot path. The step kernels write into reused buffers, and the online
//! frontier pools its window entries, mirroring the `TrellisArena`
//! discipline.

use std::collections::VecDeque;
use std::sync::OnceLock;

use cace_hdbn::{Beam, BeamScratch, DecoderConfig, Lag, Precision, Scalar, TickInput};
use cace_model::ModelError;
use serde::{Deserialize, Serialize};

/// One flat product state: (macro activity, micro-candidate index).
pub(crate) type FlatState = (usize, usize);

/// Dense macro transition table, stored flat and dst-major:
/// `row(a)[ap] = log P(a | ap)` is one contiguous slice per new state.
///
/// Values are bitwise copies of the nested rows the engine trains (and
/// persists), so flat scoring is bit-identical to nested scoring.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatTable {
    n: usize,
    /// `to[a * n + ap] = log P(a | ap)`.
    to: Vec<f64>,
    /// Lazily built `f32` mirror of `to` (the [`Precision::Fast32`] lane;
    /// never persisted — snapshots keep the nested `f64` rows).
    to32: OnceLock<Vec<f32>>,
}

impl FlatTable {
    /// Builds the dst-major flat table from src-major nested rows
    /// (`rows[ap][a]`).
    pub(crate) fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut to = vec![0.0; n * n];
        for (ap, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                to[a * n + ap] = v;
            }
        }
        Self {
            n,
            to,
            to32: OnceLock::new(),
        }
    }

    /// Reconstructs the src-major nested rows (bitwise; used by engine
    /// snapshots, whose payload keeps the historical nested shape).
    pub(crate) fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|ap| (0..self.n).map(|a| self.to[a * self.n + ap]).collect())
            .collect()
    }

    /// The `f32` mirror, built on first fast-lane use (finite-clamping
    /// entry-wise casts of `to`, like `HdbnParams::tables_f32`).
    fn to32(&self) -> &[f32] {
        self.to32.get_or_init(|| {
            self.to
                .iter()
                .map(|&x| <f32 as Scalar>::from_f64(x))
                .collect()
        })
    }

    /// The transition column *into* macro `a`, indexed by previous macro,
    /// in lane `S`.
    #[inline]
    pub(crate) fn row<S: NhScalar>(&self, a: usize) -> &[S] {
        &S::flat(self)[a * self.n..(a + 1) * self.n]
    }
}

/// [`Scalar`] extended with this module's flat-table storage accessor —
/// the NH analogue of `Scalar::tables` (which is tied to `HdbnParams`).
pub(crate) trait NhScalar: Scalar {
    /// The dst-major flat transition storage of `t` in this lane.
    fn flat(t: &FlatTable) -> &[Self];
}

impl NhScalar for f64 {
    #[inline(always)]
    fn flat(t: &FlatTable) -> &[f64] {
        &t.to
    }
}

impl NhScalar for f32 {
    #[inline(always)]
    fn flat(t: &FlatTable) -> &[f32] {
        t.to32()
    }
}

/// The tick's product state list, enumerated macro-major.
pub(crate) fn states(input: &TickInput, user: usize, n_macro: usize) -> Vec<FlatState> {
    let cands = &input.candidates[user];
    (0..n_macro)
        .flat_map(|a| (0..cands.len()).map(move |c| (a, c)))
        .collect()
}

/// Emission scores aligned with [`states`]: direct macro classification
/// plus the item bonus plus the candidate observation log-likelihood.
pub(crate) fn emissions(
    input: &TickInput,
    user: usize,
    states: &[FlatState],
    macro_lp: &[f64],
) -> Vec<f64> {
    states
        .iter()
        .map(|&(a, c)| macro_lp[a] + input.bonus(a) + input.candidates[user][c].obs_loglik)
        .collect()
}

/// One flat DP step over the dense macro transition table, written into
/// reused `v_new`/`back` buffers.
pub(crate) fn step_into<S: NhScalar>(
    table: &FlatTable,
    prev: &[FlatState],
    v: &[S],
    cur: &[FlatState],
    emit: &[f64],
    v_new: &mut Vec<S>,
    back: &mut Vec<u32>,
) {
    v_new.clear();
    v_new.resize(cur.len(), S::NEG_INFINITY);
    back.clear();
    back.resize(cur.len(), 0);
    // The fold depends on the new state only through its macro, and the
    // state list is macro-major: compute once per macro run, fan out
    // (pure memoization — identical arithmetic and tie-breaking).
    let mut run_macro = usize::MAX;
    let mut best = S::NEG_INFINITY;
    let mut best_arg = 0u32;
    for (j, &(a, _)) in cur.iter().enumerate() {
        if a != run_macro {
            run_macro = a;
            let row = table.row::<S>(a);
            best = S::NEG_INFINITY;
            best_arg = 0;
            for (jp, (&vv, &(ap, _))) in v.iter().zip(prev).enumerate() {
                let score = vv + row[ap];
                if score > best {
                    best = score;
                    best_arg = jp as u32;
                }
            }
        }
        v_new[j] = best + S::from_f64(emit[j]);
        back[j] = best_arg;
    }
}

/// [`step_into`] restricted to a pruned previous frontier (`keep`:
/// surviving state indices, sorted ascending). Backpointers stay in
/// full-frontier coordinates.
pub(crate) fn step_pruned_into<S: NhScalar>(
    table: &FlatTable,
    prev: &[FlatState],
    v: &[S],
    keep: &[u32],
    cur: &[FlatState],
    emit: &[f64],
    v_new: &mut Vec<S>,
    back: &mut Vec<u32>,
) {
    v_new.clear();
    v_new.resize(cur.len(), S::NEG_INFINITY);
    back.clear();
    back.resize(cur.len(), 0);
    // Memoized per macro run like the dense step.
    let mut run_macro = usize::MAX;
    let mut best = S::NEG_INFINITY;
    let mut best_arg = 0u32;
    for (j, &(a, _)) in cur.iter().enumerate() {
        if a != run_macro {
            run_macro = a;
            let row = table.row::<S>(a);
            best = S::NEG_INFINITY;
            best_arg = 0;
            for &jp in keep {
                let (ap, _) = prev[jp as usize];
                let score = v[jp as usize] + row[ap];
                if score > best {
                    best = score;
                    best_arg = jp;
                }
            }
        }
        v_new[j] = best + S::from_f64(emit[j]);
        back[j] = best_arg;
    }
}

/// Last-max frontier argmax (matches `Iterator::max_by`, like the
/// hierarchical decoders' termination rule).
pub(crate) fn argmax<S: Scalar>(v: &[S]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .expect("nonempty trellis")
}

#[derive(Default)]
struct FlatEntry {
    states: Vec<FlatState>,
    back: Vec<u32>,
}

/// Parked form of one retained tick of the NH backpointer window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedFlatEntry {
    pub(crate) states: Vec<FlatState>,
    pub(crate) back: Vec<u32>,
}

/// Parked [`OnlineFlat`] state — the NH member of the per-strategy parked
/// decoder family (see `cace_hdbn::park` for the coupled/chain members
/// and the park/resume contract).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedFlat {
    pub(crate) v: Vec<f64>,
    pub(crate) v32: Vec<f32>,
    pub(crate) window: Vec<ParkedFlatEntry>,
    pub(crate) base: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted: Vec<usize>,
    pub(crate) states_explored: u64,
    pub(crate) transition_ops: u64,
    pub(crate) pruned: bool,
    pub(crate) keep: Vec<u32>,
}

fn park_err(what: impl Into<String>) -> ModelError {
    ModelError::Persistence { what: what.into() }
}

impl ParkedFlat {
    pub(crate) fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Bounds-checks everything a resumed [`OnlineFlat`] would read, so a
    /// tampered payload fails cleanly instead of panicking (the NH
    /// counterpart of `cace_hdbn::park`'s validation).
    fn validate(
        &self,
        table: &FlatTable,
        precision: Precision,
        lag: Lag,
    ) -> Result<(), ModelError> {
        let what = "parked NH stream";
        if self.base + self.window.len() != self.pushed {
            return Err(park_err(format!(
                "{what}: window does not cover the cursor"
            )));
        }
        if self.pushed > 0 && self.window.is_empty() {
            return Err(park_err(format!(
                "{what}: nonempty stream with empty window"
            )));
        }
        let expected = match lag {
            Lag::Unbounded => 0,
            Lag::Fixed(l) => self.pushed.saturating_sub(l),
        };
        if self.emitted.len() != expected || self.base > self.emitted.len() {
            return Err(park_err(format!(
                "{what}: emit schedule out of step with lag"
            )));
        }
        let mut prev_len = None;
        for (i, e) in self.window.iter().enumerate() {
            if e.states.is_empty() {
                return Err(park_err(format!("{what}: window[{i}] has no states")));
            }
            if e.states.iter().any(|&(a, _)| a >= table.n) {
                return Err(park_err(format!("{what}: window[{i}] macro out of range")));
            }
            if let Some(prev_len) = prev_len {
                if e.back.len() != e.states.len()
                    || e.back.iter().any(|&b| (b as usize) >= prev_len)
                {
                    return Err(park_err(format!(
                        "{what}: window[{i}] backpointers invalid"
                    )));
                }
            }
            prev_len = Some(e.states.len());
        }
        if let Some(frontier) = prev_len {
            let (len, has_nan) = match precision {
                Precision::Exact64 => (self.v.len(), self.v.iter().any(|s| s.is_nan())),
                Precision::Fast32 => (self.v32.len(), self.v32.iter().any(|s| s.is_nan())),
            };
            if len != frontier || has_nan {
                return Err(park_err(format!("{what}: frontier invalid")));
            }
            if self.pruned
                && !(!self.keep.is_empty()
                    && self.keep.len() < frontier
                    && self.keep.windows(2).all(|w| w[0] < w[1])
                    && self.keep.iter().all(|&k| (k as usize) < frontier))
            {
                return Err(park_err(format!("{what}: malformed beam survivor set")));
            }
        }
        Ok(())
    }
}

/// Streaming NH frontier for one user, mirroring the online decoders in
/// `cace-hdbn`: push per-tick (states, emissions), emit fixed-lag macro
/// decisions, finalize into the full macro path plus overhead accounting.
/// Window entries are pooled and the frontier ping-pongs through a reused
/// buffer, so a warmed push allocates only what its caller hands it.
///
/// The flat table is *not* captured: every [`push`](Self::push) borrows it
/// from the caller, so one table serves any number of live and parked
/// frontiers (the fleet-sharing property the serving tier relies on).
pub(crate) struct OnlineFlat {
    lag: Lag,
    decoder: DecoderConfig,
    v: Vec<f64>,
    v_next: Vec<f64>,
    v32: Vec<f32>,
    v_next32: Vec<f32>,
    window: VecDeque<FlatEntry>,
    free: Vec<FlatEntry>,
    base: usize,
    pushed: usize,
    emitted: Vec<usize>,
    states_explored: u64,
    transition_ops: u64,
    scratch: BeamScratch,
    pruned: bool,
}

/// Advances (or initializes) a flat frontier by one DP step in lane `S`,
/// then applies the beam — the per-[`Precision`] dispatch target of
/// [`OnlineFlat::push`], over explicit disjoint fields.
#[allow(clippy::too_many_arguments)]
fn advance_flat<S: NhScalar>(
    table: &FlatTable,
    beam: Beam,
    prev: Option<&FlatEntry>,
    entry: &mut FlatEntry,
    emit: &[f64],
    v: &mut Vec<S>,
    v_next: &mut Vec<S>,
    scratch: &mut BeamScratch,
    pruned: &mut bool,
    transition_ops: &mut u64,
) {
    match prev {
        None => {
            v.clear();
            v.extend(emit.iter().map(|&e| S::from_f64(e)));
        }
        Some(prev) => {
            if *pruned {
                *transition_ops += (entry.states.len() * scratch.keep().len()) as u64;
                step_pruned_into(
                    table,
                    &prev.states,
                    v,
                    scratch.keep(),
                    &entry.states,
                    emit,
                    v_next,
                    &mut entry.back,
                );
            } else {
                *transition_ops += (entry.states.len() * prev.states.len()) as u64;
                step_into(
                    table,
                    &prev.states,
                    v,
                    &entry.states,
                    emit,
                    v_next,
                    &mut entry.back,
                );
            }
            std::mem::swap(v, v_next);
        }
    }
    *pruned = beam.select_log(v, scratch);
}

impl OnlineFlat {
    pub(crate) fn new(lag: Lag, decoder: DecoderConfig) -> Self {
        Self {
            lag,
            decoder,
            v: Vec::new(),
            v_next: Vec::new(),
            v32: Vec::new(),
            v_next32: Vec::new(),
            window: VecDeque::new(),
            free: Vec::new(),
            base: 0,
            pushed: 0,
            emitted: Vec::new(),
            states_explored: 0,
            transition_ops: 0,
            scratch: BeamScratch::new(),
            pruned: false,
        }
    }

    /// Checkpoints the frontier (see `cace_hdbn::park` for the contract).
    pub(crate) fn park(&self) -> ParkedFlat {
        ParkedFlat {
            v: self.v.clone(),
            v32: self.v32.clone(),
            window: self
                .window
                .iter()
                .map(|e| ParkedFlatEntry {
                    states: e.states.clone(),
                    back: e.back.clone(),
                })
                .collect(),
            base: self.base,
            pushed: self.pushed,
            emitted: self.emitted.clone(),
            states_explored: self.states_explored,
            transition_ops: self.transition_ops,
            pruned: self.pruned,
            keep: self.keep_vec(),
        }
    }

    fn keep_vec(&self) -> Vec<u32> {
        self.scratch.keep().to_vec()
    }

    /// Rehydrates a parked frontier; bit-identical continuation against
    /// the same `table`, `lag`, and `decoder` the stream was opened with.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when the parked state is structurally
    /// inconsistent with the table.
    pub(crate) fn resume(
        table: &FlatTable,
        lag: Lag,
        decoder: DecoderConfig,
        parked: &ParkedFlat,
    ) -> Result<Self, ModelError> {
        parked.validate(table, decoder.precision, lag)?;
        let mut scratch = BeamScratch::new();
        scratch.set_keep(&parked.keep);
        Ok(Self {
            lag,
            decoder,
            v: parked.v.clone(),
            v_next: Vec::new(),
            v32: parked.v32.clone(),
            v_next32: Vec::new(),
            window: parked
                .window
                .iter()
                .map(|e| FlatEntry {
                    states: e.states.clone(),
                    back: e.back.clone(),
                })
                .collect(),
            free: Vec::new(),
            base: parked.base,
            pushed: parked.pushed,
            emitted: parked.emitted.clone(),
            states_explored: parked.states_explored,
            transition_ops: parked.transition_ops,
            scratch,
            pruned: parked.pruned,
        })
    }

    /// Consumes one tick's state list and aligned emissions; returns the
    /// ripened `(tick, macro)` decision, if any.
    pub(crate) fn push(
        &mut self,
        table: &FlatTable,
        states: Vec<FlatState>,
        emit: Vec<f64>,
    ) -> Option<(usize, usize)> {
        self.states_explored += states.len() as u64;
        let mut entry = self.free.pop().unwrap_or_default();
        entry.states = states;
        entry.back.clear();
        let prev = self.window.back();
        match self.decoder.precision {
            Precision::Exact64 => advance_flat(
                table,
                self.decoder.beam,
                prev,
                &mut entry,
                &emit,
                &mut self.v,
                &mut self.v_next,
                &mut self.scratch,
                &mut self.pruned,
                &mut self.transition_ops,
            ),
            Precision::Fast32 => advance_flat(
                table,
                self.decoder.beam,
                prev,
                &mut entry,
                &emit,
                &mut self.v32,
                &mut self.v_next32,
                &mut self.scratch,
                &mut self.pruned,
                &mut self.transition_ops,
            ),
        }
        self.window.push_back(entry);
        self.pushed += 1;
        self.emit_ready()
    }

    /// Argmax of the live frontier, in whichever lane the decoder runs.
    fn frontier_argmax(&self) -> usize {
        match self.decoder.precision {
            Precision::Exact64 => argmax(&self.v),
            Precision::Fast32 => argmax(&self.v32),
        }
    }

    fn state_at(&self, idx: usize) -> usize {
        let mut j = self.frontier_argmax();
        for i in (idx + 1..self.window.len()).rev() {
            j = self.window[i].back[j] as usize;
        }
        j
    }

    fn emit_ready(&mut self) -> Option<(usize, usize)> {
        let Lag::Fixed(lag) = self.lag else {
            return None;
        };
        let last = self.pushed - 1;
        if last < lag {
            return None;
        }
        let tick = last - lag;
        let idx = tick - self.base;
        let j = self.state_at(idx);
        let macro_id = self.window[idx].states[j].0;
        self.emitted.push(macro_id);
        while self.base <= tick && self.window.len() > 1 {
            let entry = self.window.pop_front().expect("nonempty window");
            self.free.push(entry);
            self.base += 1;
        }
        Some((tick, macro_id))
    }

    /// Ends the stream: `(macro path, states explored, transition ops)`.
    /// Returns `None` if no tick was ever pushed.
    pub(crate) fn finalize(mut self) -> Option<(Vec<usize>, u64, u64)> {
        if self.pushed == 0 {
            return None;
        }
        let mut j = self.frontier_argmax();
        let committed = self.emitted.len();
        let mut tail = Vec::with_capacity(self.pushed - committed);
        for t in (committed..self.pushed).rev() {
            let idx = t - self.base;
            tail.push(self.window[idx].states[j].0);
            if idx > 0 {
                j = self.window[idx].back[j] as usize;
            }
        }
        tail.reverse();
        let mut macros = std::mem::take(&mut self.emitted);
        macros.extend(tail);
        Some((macros, self.states_explored, self.transition_ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_table_roundtrips_and_matches_nested_lookup() {
        let rows = vec![
            vec![-0.1, -2.3, -4.5],
            vec![-1.0, -0.2, -3.3],
            vec![-2.2, -1.1, -0.3],
        ];
        let table = FlatTable::from_rows(&rows);
        assert_eq!(table.to_rows(), rows, "from_rows → to_rows is lossless");
        for (ap, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                assert_eq!(
                    table.row::<f64>(a)[ap],
                    v,
                    "flat load == nested rows[{ap}][{a}]"
                );
            }
        }
    }
}
