//! The NH (Naive-HMM) flat product decoder, factored into per-tick DP
//! steps.
//!
//! NH refuses every piece of CACE structure: no hierarchy, no miners, no
//! coupling — just a flat Viterbi over the (macro × micro-beam) product
//! space per user, with macro emissions classified directly from frame
//! features. The step functions here are shared between the batch decoder
//! (`CaceEngine::recognize` under [`crate::Strategy::NaiveHmm`]) and the
//! streaming [`OnlineFlat`] frontier, which keeps the two bit-identical.
//!
//! Like the hierarchical decoders in `cace-hdbn`, NH scores through a
//! dense flat table: [`FlatTable`] stores the macro transition matrix
//! dst-major, so each new state's transition column is one contiguous
//! `n_macro`-entry row — no nested `Vec<Vec<f64>>` pointer chase on the
//! hot path. The step kernels write into reused buffers, and the online
//! frontier pools its window entries, mirroring the `TrellisArena`
//! discipline.

use std::collections::VecDeque;
use std::sync::OnceLock;

use cace_hdbn::park::{check, validate_cursor, validate_frontier};
use cace_hdbn::trellis::{
    BatchLane, BatchedTrellis, Dest, OnlineTrellis, ScoreModel, StateSpace, TrellisEntry,
    TrellisFamily,
};
use cace_hdbn::{DecoderConfig, Lag, Precision, Scalar, StepScratch, TickInput};
use cace_model::ModelError;
use serde::{Deserialize, Serialize};

/// One flat product state: (macro activity, micro-candidate index).
pub(crate) type FlatState = (usize, usize);

/// Dense macro transition table, stored flat and dst-major:
/// `row(a)[ap] = log P(a | ap)` is one contiguous slice per new state.
///
/// Values are bitwise copies of the nested rows the engine trains (and
/// persists), so flat scoring is bit-identical to nested scoring.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatTable {
    n: usize,
    /// `to[a * n + ap] = log P(a | ap)`.
    to: Vec<f64>,
    /// Lazily built `f32` mirror of `to` (the [`Precision::Fast32`] lane;
    /// never persisted — snapshots keep the nested `f64` rows).
    to32: OnceLock<Vec<f32>>,
}

impl FlatTable {
    /// Builds the dst-major flat table from src-major nested rows
    /// (`rows[ap][a]`).
    pub(crate) fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut to = vec![0.0; n * n];
        for (ap, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                to[a * n + ap] = v;
            }
        }
        Self {
            n,
            to,
            to32: OnceLock::new(),
        }
    }

    /// Reconstructs the src-major nested rows (bitwise; used by engine
    /// snapshots, whose payload keeps the historical nested shape).
    pub(crate) fn to_rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|ap| (0..self.n).map(|a| self.to[a * self.n + ap]).collect())
            .collect()
    }

    /// The `f32` mirror, built on first fast-lane use (finite-clamping
    /// entry-wise casts of `to`, like `HdbnParams::tables_f32`).
    fn to32(&self) -> &[f32] {
        self.to32.get_or_init(|| {
            self.to
                .iter()
                .map(|&x| <f32 as Scalar>::from_f64(x))
                .collect()
        })
    }

    /// The transition column *into* macro `a`, indexed by previous macro,
    /// in lane `S`.
    #[inline]
    pub(crate) fn row<S: NhScalar>(&self, a: usize) -> &[S] {
        &S::flat(self)[a * self.n..(a + 1) * self.n]
    }
}

/// [`Scalar`] extended with this module's flat-table storage accessor —
/// the NH analogue of `Scalar::tables` (which is tied to `HdbnParams`).
pub(crate) trait NhScalar: Scalar {
    /// The dst-major flat transition storage of `t` in this lane.
    fn flat(t: &FlatTable) -> &[Self];
}

impl NhScalar for f64 {
    #[inline(always)]
    fn flat(t: &FlatTable) -> &[f64] {
        &t.to
    }
}

impl NhScalar for f32 {
    #[inline(always)]
    fn flat(t: &FlatTable) -> &[f32] {
        t.to32()
    }
}

/// The tick's product state list, enumerated macro-major.
pub(crate) fn states(input: &TickInput, user: usize, n_macro: usize) -> Vec<FlatState> {
    let cands = &input.candidates[user];
    (0..n_macro)
        .flat_map(|a| (0..cands.len()).map(move |c| (a, c)))
        .collect()
}

/// Emission scores aligned with [`states`]: direct macro classification
/// plus the item bonus plus the candidate observation log-likelihood.
pub(crate) fn emissions(
    input: &TickInput,
    user: usize,
    states: &[FlatState],
    macro_lp: &[f64],
) -> Vec<f64> {
    states
        .iter()
        .map(|&(a, c)| macro_lp[a] + input.bonus(a) + input.candidates[user][c].obs_loglik)
        .collect()
}

/// One tick of the flat product space through the generic
/// [`StateSpace`] lens: macro-major states (so slots coincide with
/// macros), one contiguous same-group pseudo-run covering the whole
/// frontier (NH has no switch structure), and emissions borrowed from the
/// entry.
pub(crate) struct FlatView<'a> {
    states: &'a [FlatState],
    emit: &'a [f64],
    /// The single whole-frontier run.
    run: [(u32, u32, u32); 1],
    n_macro: usize,
}

impl<'a> FlatView<'a> {
    pub(crate) fn new(states: &'a [FlatState], emit: &'a [f64], n_macro: usize) -> Self {
        Self {
            states,
            emit,
            run: [(0, 0, states.len() as u32)],
            n_macro,
        }
    }
}

impl StateSpace for FlatView<'_> {
    fn len(&self) -> usize {
        self.states.len()
    }

    fn n_slots(&self) -> usize {
        self.n_macro
    }

    fn slot(&self, j: usize) -> u32 {
        self.states[j].0 as u32
    }

    fn slot_pair(&self, s: usize) -> u32 {
        s as u32
    }

    fn pair(&self, j: usize) -> u32 {
        self.states[j].0 as u32
    }

    fn group_of(&self, j: usize) -> u32 {
        self.states[j].0 as u32
    }

    fn runs(&self) -> &[(u32, u32, u32)] {
        &self.run
    }

    fn emission(&self, j: usize) -> f64 {
        self.emit[j]
    }
}

/// The NH [`ScoreModel`]: no switch structure (`SWITCH = false`), no
/// prior term at init (the first frontier is the emissions alone), and
/// one dst-major [`FlatTable`] row per destination macro.
pub(crate) struct FlatModel<'a> {
    pub(crate) table: &'a FlatTable,
}

impl<S: NhScalar> ScoreModel<S> for FlatModel<'_> {
    const SWITCH: bool = false;

    fn init_score(&self, _group: u32, _pair: u32, emission: f64) -> f64 {
        emission
    }

    fn dest(&self, pair: u32) -> Dest<'_, S> {
        Dest {
            group: pair,
            cont: self.table.row::<S>(pair as usize),
            switch: &[],
        }
    }
}

/// One retained tick of the NH backpointer window (pooled through the
/// generic core's free list).
#[derive(Default)]
struct FlatEntry {
    states: Vec<FlatState>,
    /// The tick's emissions, kept alongside the states so the step kernel
    /// can read the *current* tick's emissions from the entry (never
    /// parked: only the newest tick's emissions are ever read, and a
    /// parked stream re-derives them on the next push).
    emit: Vec<f64>,
    back: Vec<u32>,
}

impl TrellisEntry for FlatEntry {
    fn back(&self) -> &[u32] {
        &self.back
    }
}

/// The NH family's [`TrellisFamily`] instantiation: the generic chain
/// kernels over [`FlatModel`], bounded to [`NhScalar`] lanes (the flat
/// table owns its own `f32` mirror).
struct FlatFamily<'a> {
    table: &'a FlatTable,
}

impl<S: NhScalar> TrellisFamily<S> for FlatFamily<'_> {
    type Entry = FlatEntry;

    fn init(&self, entry: &mut FlatEntry, v: &mut Vec<S>) {
        let FlatEntry { states, emit, back } = entry;
        let cur = FlatView::new(states, emit, self.table.n);
        cace_hdbn::trellis::init_into(&FlatModel { table: self.table }, &cur, v);
        back.clear();
    }

    fn step_dense(
        &self,
        prev: &FlatEntry,
        v: &[S],
        entry: &mut FlatEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let FlatEntry { states, emit, back } = entry;
        let cur = FlatView::new(states, emit, self.table.n);
        let pv = FlatView::new(&prev.states, &prev.emit, self.table.n);
        cace_hdbn::trellis::step_dense_into(
            &FlatModel { table: self.table },
            &pv,
            v,
            &cur,
            step,
            back,
        );
        (states.len() * prev.states.len()) as u64
    }

    fn step_pruned(
        &self,
        prev: &FlatEntry,
        v: &[S],
        keep: &[u32],
        entry: &mut FlatEntry,
        step: &mut StepScratch<S>,
    ) -> u64 {
        let FlatEntry { states, emit, back } = entry;
        let cur = FlatView::new(states, emit, self.table.n);
        let pv = FlatView::new(&prev.states, &prev.emit, self.table.n);
        cace_hdbn::trellis::step_pruned_into(
            &FlatModel { table: self.table },
            &pv,
            v,
            keep,
            &cur,
            step,
            back,
        );
        (states.len() * keep.len()) as u64
    }
}

/// Parked form of one retained tick of the NH backpointer window.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedFlatEntry {
    pub(crate) states: Vec<FlatState>,
    pub(crate) back: Vec<u32>,
}

/// Parked [`OnlineFlat`] state — the NH member of the per-strategy parked
/// decoder family (see `cace_hdbn::park` for the coupled/chain members
/// and the park/resume contract).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct ParkedFlat {
    pub(crate) v: Vec<f64>,
    pub(crate) v32: Vec<f32>,
    pub(crate) window: Vec<ParkedFlatEntry>,
    pub(crate) base: usize,
    pub(crate) pushed: usize,
    pub(crate) emitted: Vec<usize>,
    pub(crate) states_explored: u64,
    pub(crate) transition_ops: u64,
    pub(crate) pruned: bool,
    pub(crate) keep: Vec<u32>,
}

impl ParkedFlat {
    pub(crate) fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Bounds-checks everything a resumed [`OnlineFlat`] would read, so a
    /// tampered payload fails cleanly instead of panicking. Cursor and
    /// frontier invariants go through the shared `cace_hdbn::park`
    /// helpers — the same checks, same error shape, as the coupled and
    /// chain families; only the NH-specific per-entry state checks live
    /// here.
    fn validate(
        &self,
        table: &FlatTable,
        precision: Precision,
        lag: Lag,
    ) -> Result<(), ModelError> {
        let what = "parked NH stream";
        validate_cursor(
            what,
            self.base,
            self.pushed,
            self.window.len(),
            self.emitted.len(),
            lag,
        )?;
        let mut prev_len = None;
        for (i, e) in self.window.iter().enumerate() {
            check(!e.states.is_empty(), || {
                format!("{what}: window[{i}] has no states")
            })?;
            check(e.states.iter().all(|&(a, _)| a < table.n), || {
                format!("{what}: window[{i}] macro out of range")
            })?;
            if let Some(prev_len) = prev_len {
                check(
                    e.back.len() == e.states.len()
                        && e.back.iter().all(|&b| (b as usize) < prev_len),
                    || format!("{what}: window[{i}] backpointers invalid"),
                )?;
            }
            prev_len = Some(e.states.len());
        }
        if let Some(frontier) = prev_len {
            validate_frontier(
                what,
                frontier,
                &self.v,
                &self.v32,
                precision,
                self.pruned,
                &self.keep,
            )?;
        }
        Ok(())
    }
}

/// Streaming NH frontier for one user, wrapping the same generic
/// [`OnlineTrellis`] core as the hierarchical online decoders: push
/// per-tick (states, emissions), emit fixed-lag macro decisions, finalize
/// into the full macro path plus overhead accounting. Window entries are
/// pooled and the frontier ping-pongs through the core's arena, so a
/// warmed push allocates only what its caller hands it.
///
/// The flat table is *not* captured: every [`push`](Self::push) borrows it
/// from the caller, so one table serves any number of live and parked
/// frontiers (the fleet-sharing property the serving tier relies on).
pub(crate) struct OnlineFlat {
    decoder: DecoderConfig,
    core: OnlineTrellis<FlatEntry>,
    emitted: Vec<usize>,
}

impl OnlineFlat {
    pub(crate) fn new(lag: Lag, decoder: DecoderConfig) -> Self {
        Self {
            decoder,
            core: OnlineTrellis::new(lag),
            emitted: Vec::new(),
        }
    }

    /// Checkpoints the frontier (see `cace_hdbn::park` for the contract).
    pub(crate) fn park(&self) -> ParkedFlat {
        ParkedFlat {
            v: self.core.frontier().to_vec(),
            v32: self.core.frontier32().to_vec(),
            window: self
                .core
                .entries()
                .map(|e| ParkedFlatEntry {
                    states: e.states.clone(),
                    back: e.back.clone(),
                })
                .collect(),
            base: self.core.base(),
            pushed: self.core.ticks_pushed(),
            emitted: self.emitted.clone(),
            states_explored: self.core.states_explored(),
            transition_ops: self.core.transition_ops(),
            pruned: self.core.pruned(),
            keep: self.core.keep().to_vec(),
        }
    }

    /// Rehydrates a parked frontier; bit-identical continuation against
    /// the same `table`, `lag`, and `decoder` the stream was opened with.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when the parked state is structurally
    /// inconsistent with the table.
    pub(crate) fn resume(
        table: &FlatTable,
        lag: Lag,
        decoder: DecoderConfig,
        parked: &ParkedFlat,
    ) -> Result<Self, ModelError> {
        parked.validate(table, decoder.precision, lag)?;
        let window: VecDeque<FlatEntry> = parked
            .window
            .iter()
            .map(|e| FlatEntry {
                states: e.states.clone(),
                emit: Vec::new(),
                back: e.back.clone(),
            })
            .collect();
        Ok(Self {
            decoder,
            core: OnlineTrellis::from_parts(
                lag,
                parked.v.clone(),
                parked.v32.clone(),
                window,
                parked.base,
                parked.pushed,
                parked.states_explored,
                parked.transition_ops,
                parked.pruned,
                &parked.keep,
            ),
            emitted: parked.emitted.clone(),
        })
    }

    /// Consumes one tick's state list and aligned emissions; returns the
    /// ripened `(tick, macro)` decision, if any.
    pub(crate) fn push(
        &mut self,
        table: &FlatTable,
        states: Vec<FlatState>,
        emit: Vec<f64>,
    ) -> Option<(usize, usize)> {
        let mut entry = self.core.take_entry();
        entry.states = states;
        entry.emit = emit;
        let n_states = entry.states.len() as u64;
        self.core
            .push_entry(&FlatFamily { table }, self.decoder, entry, n_states);
        let decision = self
            .core
            .emit_ready(self.decoder.precision, |e, j, t| (t, e.states[j].0));
        if let Some((_, macro_id)) = decision {
            self.emitted.push(macro_id);
        }
        decision
    }

    /// Advances every stream in `homes` through one shared tick with a
    /// single fused kernel pass over all frontiers at once (the NH member
    /// of the fleet-batched stepping family — see
    /// `cace_hdbn::trellis::BatchedTrellis`).
    ///
    /// `states`/`emit` are the tick's product states and aligned
    /// emissions, computed once by the caller; they are identical for
    /// every cohort member by construction (same table, same tick, same
    /// user). Decisions are bit-identical to pushing each stream alone.
    ///
    /// Returns `None` with every stream untouched when the cohort is not
    /// batchable: fewer than two streams, mismatched decoder or lag, a
    /// stream before its first tick, an actively-pruned frontier, or
    /// previous-tick state lists that differ.
    pub(crate) fn push_batch(
        homes: &mut [&mut OnlineFlat],
        table: &FlatTable,
        states: &[FlatState],
        emit: &[f64],
        bt: &mut BatchedTrellis,
    ) -> Option<Vec<Option<(usize, usize)>>> {
        if homes.len() < 2 {
            return None;
        }
        let decoder = homes[0].decoder;
        let lag = homes[0].core.lag();
        let batchable = homes.iter().all(|h| {
            h.decoder == decoder
                && h.core.lag() == lag
                && h.core.ticks_pushed() >= 1
                && !h.core.pruned()
        });
        if !batchable {
            return None;
        }
        {
            let first = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            if !homes[1..]
                .iter()
                .all(|h| h.core.last_entry().expect("ticks_pushed >= 1").states == first.states)
            {
                return None;
            }
        }
        Some(match decoder.precision {
            Precision::Exact64 => {
                Self::push_batch_lane::<f64>(homes, table, states, emit, bt, decoder)
            }
            Precision::Fast32 => {
                Self::push_batch_lane::<f32>(homes, table, states, emit, bt, decoder)
            }
        })
    }

    /// Lane-monomorphic body of [`push_batch`](Self::push_batch):
    /// eligibility already holds.
    fn push_batch_lane<S: BatchLane + NhScalar>(
        homes: &mut [&mut OnlineFlat],
        table: &FlatTable,
        states: &[FlatState],
        emit: &[f64],
        bt: &mut BatchedTrellis,
        decoder: DecoderConfig,
    ) -> Vec<Option<(usize, usize)>> {
        let n_states = states.len() as u64;
        // One fused kernel pass over every frontier at once. The previous
        // view's emissions are never read by the dense kernel (they are
        // already folded into each frontier), so an empty slice suffices —
        // the same contract `resume` relies on.
        let charge = {
            let bs = S::scratch(bt);
            let prev = homes[0].core.last_entry().expect("ticks_pushed >= 1");
            let pv = FlatView::new(&prev.states, &[], table.n);
            let cur = FlatView::new(states, emit, table.n);
            let vs: Vec<&[S]> = homes.iter().map(|h| S::frontier_of(&h.core)).collect();
            cace_hdbn::step_dense_batch_into(&FlatModel { table }, &pv, &vs, &cur, bs);
            (states.len() * prev.states.len()) as u64
        };
        // Commit per stream: swap in the batched frontier and backpointer
        // rows, then account and emit exactly as the scalar path does.
        let bs = S::scratch(bt);
        let mut decisions = Vec::with_capacity(homes.len());
        for (h, home) in homes.iter_mut().enumerate() {
            let mut entry = home.core.take_entry();
            entry.states.clear();
            entry.states.extend_from_slice(states);
            entry.emit.clear();
            entry.emit.extend_from_slice(emit);
            std::mem::swap(S::frontier_vec(&mut home.core), &mut bs.v_next[h]);
            std::mem::swap(&mut entry.back, &mut bs.back[h]);
            home.core
                .commit_external_step(entry, n_states, charge, decoder);
            let decision = home
                .core
                .emit_ready(decoder.precision, |e, j, t| (t, e.states[j].0));
            if let Some((_, macro_id)) = decision {
                home.emitted.push(macro_id);
            }
            decisions.push(decision);
        }
        decisions
    }

    /// Ends the stream: `(macro path, states explored, transition ops)`.
    /// Returns `None` if no tick was ever pushed.
    pub(crate) fn finalize(self) -> Option<(Vec<usize>, u64, u64)> {
        if self.core.ticks_pushed() == 0 {
            return None;
        }
        let committed = self.emitted.len();
        let (tail, _log_prob) =
            self.core
                .resolve_tail(self.decoder.precision, committed, |e, j| e.states[j].0);
        let mut macros = self.emitted;
        macros.extend(tail);
        Some((
            macros,
            self.core.states_explored(),
            self.core.transition_ops(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_push_matches_scalar_push_bit_identically() {
        let rows = vec![
            vec![-0.1, -2.3, -4.5],
            vec![-1.0, -0.2, -3.3],
            vec![-2.2, -1.1, -0.3],
        ];
        let table = FlatTable::from_rows(&rows);
        let mk_states = |c: usize| -> Vec<FlatState> {
            (0..3).flat_map(|a| (0..c).map(move |m| (a, m))).collect()
        };
        for decoder in [
            DecoderConfig::exact(),
            DecoderConfig::top_k(100), // covers every frontier: never prunes
            DecoderConfig::exact().fast32(),
        ] {
            let lag = Lag::Fixed(2);
            let spawn = || -> Vec<OnlineFlat> {
                (0..4)
                    .map(|h| {
                        let mut s = OnlineFlat::new(lag, decoder);
                        let st = mk_states(2);
                        // Stagger the first tick so every frontier differs.
                        let em: Vec<f64> = (0..st.len())
                            .map(|j| -0.5 * j as f64 - 0.7 * h as f64)
                            .collect();
                        s.push(&table, st, em);
                        s
                    })
                    .collect()
            };
            let mut batched = spawn();
            let mut scalar = spawn();
            let mut bt = BatchedTrellis::new();
            for t in 1..12usize {
                let st = mk_states(1 + t % 3);
                let em: Vec<f64> = st
                    .iter()
                    .enumerate()
                    .map(|(j, &(a, _))| -(((a * 7 + j * 3 + t) % 11) as f64) * 0.23)
                    .collect();
                let mut refs: Vec<&mut OnlineFlat> = batched.iter_mut().collect();
                let ds = OnlineFlat::push_batch(&mut refs, &table, &st, &em, &mut bt)
                    .expect("cohort is batchable");
                for (s, d) in scalar.iter_mut().zip(ds) {
                    assert_eq!(s.push(&table, st.clone(), em.clone()), d);
                }
            }
            for (b, s) in batched.into_iter().zip(scalar) {
                assert_eq!(b.finalize(), s.finalize());
            }
        }
    }

    #[test]
    fn flat_table_roundtrips_and_matches_nested_lookup() {
        let rows = vec![
            vec![-0.1, -2.3, -4.5],
            vec![-1.0, -0.2, -3.3],
            vec![-2.2, -1.1, -0.3],
        ];
        let table = FlatTable::from_rows(&rows);
        assert_eq!(table.to_rows(), rows, "from_rows → to_rows is lossless");
        for (ap, row) in rows.iter().enumerate() {
            for (a, &v) in row.iter().enumerate() {
                assert_eq!(
                    table.row::<f64>(a)[ap],
                    v,
                    "flat load == nested rows[{ap}][{a}]"
                );
            }
        }
    }
}
