//! State-space creation (Fig 2, step 3): per-tick candidate sets scored
//! against the observations.

use cace_behavior::ObservedTick;
use cace_mining::{AtomSpace, UserCandidates};
use cace_model::{Postural, StateMask, SubLocation};

use cace_hdbn::TickInput;

/// Gaussian-ish width (meters) of the beacon location score.
const BEACON_SIGMA: f64 = 1.2;

/// Per-tick observation scores used to rank candidate micro tuples.
#[derive(Debug, Clone)]
pub struct TickScores {
    /// Postural classifier log-probabilities per user.
    pub postural_lp: [Vec<f64>; 2],
    /// Gestural classifier log-probabilities per user (`None` = absent).
    pub gestural_lp: [Option<Vec<f64>>; 2],
}

/// Location log-score of sub-location `l` for `user`, combining beacon
/// distance, CASAS sub-location motion, and PIR/motion consistency.
pub fn location_score(
    observed: &ObservedTick,
    user: usize,
    postural: Postural,
    location: SubLocation,
    mask: StateMask,
) -> f64 {
    if !mask.location {
        return 0.0; // modality ablated: uninformative
    }
    let mut score = 0.0;
    let mut informed = false;
    if let Some(beacon) = &observed.per_user[user].beacon {
        let (bx, by) = beacon.position;
        let (cx, cy) = location.centroid();
        let d2 = (bx - cx).powi(2) + (by - cy).powi(2);
        score += -0.5 * d2 / (BEACON_SIGMA * BEACON_SIGMA);
        informed = true;
    }
    if let Some(fired) = &observed.subloc_motion {
        score += if fired[location.index()] { -0.2 } else { -2.5 };
        informed = true;
    }
    // PIR consistency: a *moving* resident in a room whose PIR stayed silent
    // is unlikely (PIRs are motion-gated); a firing PIR mildly supports
    // co-located moving candidates.
    let room = location.room().index();
    if postural.is_moving() {
        score += if observed.room_motion[room] {
            0.3
        } else {
            -1.0
        };
    }
    if informed {
        score
    } else {
        0.0
    }
}

/// Total observation log-likelihood of one candidate micro tuple.
pub fn micro_score(
    observed: &ObservedTick,
    scores: &TickScores,
    user: usize,
    postural: usize,
    gestural: Option<usize>,
    location: usize,
    mask: StateMask,
) -> f64 {
    let mut total = scores.postural_lp[user][postural];
    if mask.gestural {
        if let (Some(g), Some(glp)) = (gestural, &scores.gestural_lp[user]) {
            total += glp[g];
        }
    }
    let p = Postural::from_index(postural).expect("postural in range");
    let l = SubLocation::from_index(location).expect("location in range");
    total + location_score(observed, user, p, l, mask)
}

/// Builds the tick's inference input from (possibly pruned) candidates.
pub fn build_tick_input(
    space: &AtomSpace,
    observed: &ObservedTick,
    scores: &TickScores,
    pruned: &[UserCandidates; 2],
    mask: StateMask,
    use_gestural: bool,
    beam: usize,
) -> TickInput {
    TickInput::from_candidates(
        space,
        pruned,
        use_gestural && mask.gestural,
        beam,
        |u, p, g, l| micro_score(observed, scores, u, p, g, l, mask),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{cace_grammar, simulate_session, SessionConfig};
    use cace_sensing::NoiseConfig;

    fn uniform_scores() -> TickScores {
        TickScores {
            postural_lp: [vec![0.0; 6], vec![0.0; 6]],
            gestural_lp: [Some(vec![0.0; 5]), Some(vec![0.0; 5])],
        }
    }

    #[test]
    fn beacon_favors_true_location() {
        let g = cace_grammar();
        let cfg = SessionConfig::tiny().with_noise(NoiseConfig::noiseless());
        let session = simulate_session(&g, &cfg, 1);
        let tick = &session.ticks[30];
        let truth = tick.truth[0].micro;
        let scores = uniform_scores();
        let true_score = micro_score(
            &tick.observed,
            &scores,
            0,
            truth.postural.index(),
            Some(truth.gestural.index()),
            truth.location.index(),
            StateMask::FULL,
        );
        // The true location should be among the best-scoring ones.
        let better = SubLocation::ALL
            .iter()
            .filter(|l| {
                micro_score(
                    &tick.observed,
                    &scores,
                    0,
                    truth.postural.index(),
                    Some(truth.gestural.index()),
                    l.index(),
                    StateMask::FULL,
                ) > true_score + 1e-9
            })
            .count();
        assert!(
            better <= 2,
            "true location should rank near the top ({better} better)"
        );
    }

    #[test]
    fn ablating_location_flattens_the_score() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 2);
        let tick = &session.ticks[10];
        let scores = uniform_scores();
        let s1 = micro_score(
            &tick.observed,
            &scores,
            0,
            1,
            Some(0),
            0,
            StateMask::NO_LOCATION,
        );
        let s2 = micro_score(
            &tick.observed,
            &scores,
            0,
            1,
            Some(0),
            9,
            StateMask::NO_LOCATION,
        );
        assert_eq!(s1, s2, "without location the sub-location must not matter");
    }

    #[test]
    fn build_input_respects_beam_and_mask() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 3);
        let tick = &session.ticks[5];
        let space = AtomSpace::cace();
        let pruned = [UserCandidates::full(&space), UserCandidates::full(&space)];
        let scores = uniform_scores();
        let input = build_tick_input(
            &space,
            &tick.observed,
            &scores,
            &pruned,
            StateMask::FULL,
            true,
            7,
        );
        assert_eq!(input.candidates[0].len(), 7);
        let no_gest = build_tick_input(
            &space,
            &tick.observed,
            &scores,
            &pruned,
            StateMask::NO_GESTURAL,
            true,
            7,
        );
        assert!(no_gest.candidates[0].iter().all(|c| c.gestural.is_none()));
    }
}
