//! State-space creation (Fig 2, step 3): per-tick candidate sets scored
//! against the observations, plus the shared per-tick preparation pipeline
//! ([`TickPreparer`]) that the batch, EM, and streaming paths all run.
//!
//! Downstream of the preparation here, the decoders map every prepared
//! candidate state to a compact `(activity, postural)` pair id exactly
//! once per tick (`cace_hdbn::arena::fill_slice`) and score it through
//! the dense [`cace_hdbn::ScoreTables`] — so the per-tick cost of a
//! candidate is one id mapping plus flat-array loads, regardless of how
//! many DP edges touch it.
//!
//! Two distinct "beams" act on a tick, at different stages. The
//! *candidate* beam here ([`TickPreparer`]'s `beam` field, from
//! [`CaceConfig::beam`](crate::CaceConfig)) caps how many scored micro
//! tuples per user enter the decoder at all — it shapes the state space
//! before inference. The *frontier* beam
//! ([`CaceConfig::decoder`](crate::CaceConfig), a
//! [`cace_hdbn::Beam`]) acts later, inside the decoders, bounding how many
//! of those states' trellis scores are carried from one tick to the next.
//! They compose: the candidate beam fixes the frontier's width ceiling
//! (see [`Strategy::frontier_bound`](crate::Strategy::frontier_bound)),
//! the frontier beam prunes within it.

use cace_behavior::ObservedTick;
use cace_features::TickFeatures;
use cace_mining::{AtomSpace, CandidateTick, PruningEngine, UserCandidates};
use cace_model::{Postural, StateMask, SubLocation};

use cace_hdbn::TickInput;

use crate::classifiers::MicroClassifiers;
use crate::evidence::{build_evidence, EvidenceConfig, PrevState};

/// Gaussian-ish width (meters) of the beacon location score.
const BEACON_SIGMA: f64 = 1.2;

/// Per-tick observation scores used to rank candidate micro tuples.
#[derive(Debug, Clone)]
pub struct TickScores {
    /// Postural classifier log-probabilities per user.
    pub postural_lp: [Vec<f64>; 2],
    /// Gestural classifier log-probabilities per user (`None` = absent).
    pub gestural_lp: [Option<Vec<f64>>; 2],
}

/// Location log-score of sub-location `l` for `user`, combining beacon
/// distance, CASAS sub-location motion, and PIR/motion consistency.
pub fn location_score(
    observed: &ObservedTick,
    user: usize,
    postural: Postural,
    location: SubLocation,
    mask: StateMask,
) -> f64 {
    if !mask.location {
        return 0.0; // modality ablated: uninformative
    }
    let mut score = 0.0;
    let mut informed = false;
    if let Some(beacon) = &observed.per_user[user].beacon {
        let (bx, by) = beacon.position;
        let (cx, cy) = location.centroid();
        let d2 = (bx - cx).powi(2) + (by - cy).powi(2);
        score += -0.5 * d2 / (BEACON_SIGMA * BEACON_SIGMA);
        informed = true;
    }
    if let Some(fired) = &observed.subloc_motion {
        score += if fired[location.index()] { -0.2 } else { -2.5 };
        informed = true;
    }
    // PIR consistency: a *moving* resident in a room whose PIR stayed silent
    // is unlikely (PIRs are motion-gated); a firing PIR mildly supports
    // co-located moving candidates.
    let room = location.room().index();
    if postural.is_moving() {
        score += if observed.room_motion[room] {
            0.3
        } else {
            -1.0
        };
    }
    if informed {
        score
    } else {
        0.0
    }
}

/// Total observation log-likelihood of one candidate micro tuple.
pub fn micro_score(
    observed: &ObservedTick,
    scores: &TickScores,
    user: usize,
    postural: usize,
    gestural: Option<usize>,
    location: usize,
    mask: StateMask,
) -> f64 {
    let mut total = scores.postural_lp[user][postural];
    if mask.gestural {
        if let (Some(g), Some(glp)) = (gestural, &scores.gestural_lp[user]) {
            total += glp[g];
        }
    }
    let p = Postural::from_index(postural).expect("postural in range");
    let l = SubLocation::from_index(location).expect("location in range");
    total + location_score(observed, user, p, l, mask)
}

/// Builds the tick's inference input from (possibly pruned) candidates.
pub fn build_tick_input(
    space: &AtomSpace,
    observed: &ObservedTick,
    scores: &TickScores,
    pruned: &[UserCandidates; 2],
    mask: StateMask,
    use_gestural: bool,
    beam: usize,
) -> TickInput {
    TickInput::from_candidates(
        space,
        pruned,
        use_gestural && mask.gestural,
        beam,
        |u, p, g, l| micro_score(observed, scores, u, p, g, l, mask),
    )
}

/// A fully prepared inference tick: the decoder input plus the pruning
/// accounting the overhead experiments report.
#[derive(Debug, Clone)]
pub struct PreparedTick {
    /// The decoder-ready tick input (scored, beamed candidates plus macro
    /// restrictions and item-sensor bonus).
    pub input: TickInput,
    /// Post-pruning factorized candidate-space size
    /// ([`CandidateTick::joint_size`]) — what the correlation-pruning
    /// strategies report as per-tick joint size.
    pub joint_size: u128,
    /// Rules fired while pruning this tick (0 on the unpruned paths).
    pub rules_fired: u64,
}

/// The per-tick preparation pipeline shared by every recognition path.
///
/// One tick's journey from raw observation to decoder input — masking the
/// ablated modalities, scoring the micro classifiers, restricting to fired
/// sub-locations, firing the correlation pruner, beaming candidates, and
/// attaching the CASAS item bonus — used to live inline in
/// `CaceEngine::recognize`. It is now a standalone unit so that
/// [`CaceEngine::recognize`](crate::CaceEngine::recognize) (and through it
/// `recognize_batch`), EM training, and the streaming
/// [`StreamingRecognizer`](crate::stream::StreamingRecognizer) run the
/// *same* code on each tick: batch recognition is `prepare` mapped over a
/// recorded session, streaming is `prepare` applied as ticks arrive.
///
/// Construction goes through `CaceEngine` (the trained model owns the
/// classifiers and pruner this borrows).
#[derive(Debug, Clone)]
pub struct TickPreparer<'a> {
    pub(crate) space: &'a AtomSpace,
    pub(crate) classifiers: &'a MicroClassifiers,
    /// `Some` on the correlation-pruning strategies (NCR, C2).
    pub(crate) pruner: Option<&'a PruningEngine>,
    pub(crate) mask: StateMask,
    pub(crate) has_gestural: bool,
    pub(crate) beam: usize,
    pub(crate) evidence: EvidenceConfig,
}

impl TickPreparer<'_> {
    /// Applies the modality mask (Fig 8a ablations) to an observation.
    ///
    /// The full-modality configuration (the production default) borrows
    /// the observation untouched — no per-tick clone on the serving hot
    /// path; only an ablated mask pays for an owned, stripped copy.
    fn masked_observation<'o>(
        &self,
        observed: &'o ObservedTick,
    ) -> std::borrow::Cow<'o, ObservedTick> {
        if self.mask.location && self.mask.gestural {
            return std::borrow::Cow::Borrowed(observed);
        }
        let mut out = observed.clone();
        if !self.mask.location {
            out.subloc_motion = None;
            for user in &mut out.per_user {
                user.beacon = None;
            }
            out.room_motion = [false; 6];
        }
        if !self.mask.gestural {
            for user in &mut out.per_user {
                user.tag = None;
            }
        }
        std::borrow::Cow::Owned(out)
    }

    /// CASAS item-sensor evidence as a per-activity log-bonus (log-odds of
    /// the fire/idle likelihoods; unattributed, so shared by both users).
    fn item_bonus(&self, observed: &ObservedTick) -> Vec<f64> {
        match &observed.items {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|&fired| if fired { 4.0 } else { -0.8 })
                .collect(),
        }
    }

    /// Sub-location motion restriction (CASAS state-space creation): "each
    /// motion sensor firing means the sub-location is occupied" — so an
    /// occupied resident must be at a fired sub-location. Applied only when
    /// at least one sensor fired (otherwise no information).
    fn restrict_to_fired(&self, observed: &ObservedTick, tick: &mut CandidateTick) {
        let Some(fired) = &observed.subloc_motion else {
            return;
        };
        if !fired.iter().any(|&f| f) {
            return;
        }
        for user in &mut tick.users {
            for (l, slot) in user.locations.iter_mut().enumerate() {
                if !fired[l] {
                    *slot = false;
                }
            }
            if user.locations.iter().all(|&b| !b) {
                // Relax rather than empty the space (all-sensor dropout).
                user.locations.iter_mut().for_each(|b| *b = true);
            }
        }
    }

    /// Micro-classifier log-probabilities for one tick's features.
    pub fn scores(&self, features: &[TickFeatures; 2]) -> TickScores {
        let score_of = |u: usize| -> (Vec<f64>, Option<Vec<f64>>) {
            let f = &features[u];
            let postural = self
                .classifiers
                .postural_log_proba(f.phone.as_ref().map(|v| v.as_slice()));
            let gestural = if self.has_gestural && self.mask.gestural {
                Some(
                    self.classifiers
                        .gestural_log_proba(f.tag.as_ref().map(|v| v.as_slice())),
                )
            } else {
                None
            };
            (postural, gestural)
        };
        let (p0, g0) = score_of(0);
        let (p1, g1) = score_of(1);
        TickScores {
            postural_lp: [p0, p1],
            gestural_lp: [g0, g1],
        }
    }

    /// Per-user *macro* emission log-probabilities — the flat NH decoder's
    /// direct classification of the macro activity from frame features.
    pub fn nh_macro_emissions(&self, features: &[TickFeatures; 2]) -> [Vec<f64>; 2] {
        let emit = |u: usize| {
            let f = &features[u];
            self.classifiers.macro_log_proba(
                f.phone.as_ref().map(|v| v.as_slice()),
                f.tag
                    .as_ref()
                    .filter(|_| self.mask.gestural)
                    .map(|v| v.as_slice()),
            )
        };
        [emit(0), emit(1)]
    }

    /// Prepares one tick end to end.
    ///
    /// `prev` is the lag-1 evidence scratch: the committed state of the
    /// previous tick, which the pruner's lag-1 rules fire on. It is
    /// updated in place with this tick's committed observation, so driving
    /// `prepare` tick by tick (streaming) threads exactly the state the
    /// batch loop threads.
    pub fn prepare(
        &self,
        observed: &ObservedTick,
        features: &[TickFeatures; 2],
        prev: &mut [PrevState; 2],
    ) -> PreparedTick {
        let observed = self.masked_observation(observed);
        let scores = self.scores(features);
        let mut tick = CandidateTick::full(self.space);
        if self.mask.location {
            self.restrict_to_fired(&observed, &mut tick);
        }
        let rules_fired = match self.pruner {
            Some(pruner) => {
                let gestural_lp: [Option<Vec<f64>>; 2] =
                    [scores.gestural_lp[0].clone(), scores.gestural_lp[1].clone()];
                let evidence = build_evidence(
                    self.space,
                    &observed,
                    &scores.postural_lp,
                    &gestural_lp,
                    prev,
                    &self.evidence,
                );
                let report = pruner.prune(&evidence, &mut tick);
                (report.positive_fired + report.negative_fired) as u64
            }
            None => 0,
        };
        let joint_size = tick.joint_size();
        let mut input = build_tick_input(
            self.space,
            &observed,
            &scores,
            &tick.users,
            self.mask,
            self.has_gestural,
            self.beam,
        );
        input.macro_bonus = self.item_bonus(&observed);
        // Commit observed location as lag-1 evidence for the next tick.
        for u in 0..2 {
            prev[u] = PrevState {
                macro_id: None,
                location: observed.per_user[u]
                    .beacon
                    .as_ref()
                    .filter(|b| b.in_home)
                    .map(|b| b.nearest.index()),
            };
        }
        PreparedTick {
            input,
            joint_size,
            rules_fired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{cace_grammar, simulate_session, SessionConfig};
    use cace_sensing::NoiseConfig;

    fn uniform_scores() -> TickScores {
        TickScores {
            postural_lp: [vec![0.0; 6], vec![0.0; 6]],
            gestural_lp: [Some(vec![0.0; 5]), Some(vec![0.0; 5])],
        }
    }

    #[test]
    fn beacon_favors_true_location() {
        let g = cace_grammar();
        let cfg = SessionConfig::tiny().with_noise(NoiseConfig::noiseless());
        let session = simulate_session(&g, &cfg, 1);
        let tick = &session.ticks[30];
        let truth = tick.truth[0].micro;
        let scores = uniform_scores();
        let true_score = micro_score(
            &tick.observed,
            &scores,
            0,
            truth.postural.index(),
            Some(truth.gestural.index()),
            truth.location.index(),
            StateMask::FULL,
        );
        // The true location should be among the best-scoring ones.
        let better = SubLocation::ALL
            .iter()
            .filter(|l| {
                micro_score(
                    &tick.observed,
                    &scores,
                    0,
                    truth.postural.index(),
                    Some(truth.gestural.index()),
                    l.index(),
                    StateMask::FULL,
                ) > true_score + 1e-9
            })
            .count();
        assert!(
            better <= 2,
            "true location should rank near the top ({better} better)"
        );
    }

    #[test]
    fn ablating_location_flattens_the_score() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 2);
        let tick = &session.ticks[10];
        let scores = uniform_scores();
        let s1 = micro_score(
            &tick.observed,
            &scores,
            0,
            1,
            Some(0),
            0,
            StateMask::NO_LOCATION,
        );
        let s2 = micro_score(
            &tick.observed,
            &scores,
            0,
            1,
            Some(0),
            9,
            StateMask::NO_LOCATION,
        );
        assert_eq!(s1, s2, "without location the sub-location must not matter");
    }

    #[test]
    fn build_input_respects_beam_and_mask() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 3);
        let tick = &session.ticks[5];
        let space = AtomSpace::cace();
        let pruned = [UserCandidates::full(&space), UserCandidates::full(&space)];
        let scores = uniform_scores();
        let input = build_tick_input(
            &space,
            &tick.observed,
            &scores,
            &pruned,
            StateMask::FULL,
            true,
            7,
        );
        assert_eq!(input.candidates[0].len(), 7);
        let no_gest = build_tick_input(
            &space,
            &tick.observed,
            &scores,
            &pruned,
            StateMask::NO_GESTURAL,
            true,
            7,
        );
        assert!(no_gest.candidates[0].iter().all(|c| c.gestural.is_none()));
    }
}
