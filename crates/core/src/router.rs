//! The sharded serving tier: route millions of homes over a fixed shard
//! grid, keeping only the hot ones live.
//!
//! [`StreamRouter`](crate::StreamRouter) holds every home's decoder state
//! in memory and borrows its engine, which caps it at "as many homes as
//! fit in RAM, in one caller's stack frame". A [`ShardedRouter`] removes
//! both limits:
//!
//! * **Model registry.** Engines are registered once under a model id and
//!   [`Arc`]-shared fleet-wide — every home of a model reads the same
//!   [`HdbnParams`](cace_hdbn::HdbnParams) and score tables, so per-home
//!   memory is decoder state only.
//! * **Stable shards.** Homes hash to one of N shards by FNV-1a of their
//!   id — a pure function of the id and the shard count, never of thread
//!   count, insertion order, or process state. Within a shard, pushes
//!   apply in input order; across shards there is no shared mutable
//!   state. Results are therefore **bit-identical** under any
//!   `RAYON_NUM_THREADS`.
//! * **Fleet-batched stepping.** Within a round, each shard groups its
//!   live, current-generation homes by (model, tick) into **batch
//!   cohorts** and advances every cohort through one fused kernel pass
//!   ([`push_cohort`](crate::stream::push_cohort)): the observation is
//!   featurized once, the model tables stream through cache once, and
//!   the trellis step runs over all frontiers at once. Homes a cohort
//!   cannot absorb — parked, mid-swap, quarantined, repeat occurrences
//!   of an id, mismatched lag or frontier shape, actively-pruning beams
//!   — fall back to the scalar path; [`ShardStats::batched_pushes`] and
//!   [`ShardStats::fallback_pushes`] count both sides. Batched and
//!   scalar decisions are **bit-identical** (`tests/router_scale.rs`
//!   and `tests/streaming_equivalence.rs` prove it).
//! * **LRU live cap.** Each shard keeps at most `live_cap` homes live;
//!   the least-recently-pushed overflow is transparently **parked** —
//!   serialized to versioned snapshot bytes (the compact binary kind
//!   [`ParkedStream::to_snapshot_bytes`] by default; JSON via
//!   [`with_json_parking`](ShardedRouter::with_json_parking)) — and
//!   rehydrated on its next push with a bit-identical continuation. A
//!   capped router's decisions equal an uncapped one's
//!   (`tests/router_scale.rs` proves it).
//! * **Fault containment.** A failing push, a tampered parked snapshot,
//!   or a checkpoint that does not match its model **quarantines** that
//!   home ([`HomeRound::Failed`], then [`HomeRound::Quarantined`]) and
//!   never desynchronizes its shard-mates, and never panics.
//! * **Online adaptation.** A model id is a *versioned* registry entry:
//!   [`enable_adaptation`](ShardedRouter::enable_adaptation) starts drift
//!   capture on the model's homes,
//!   [`adapt_model`](ShardedRouter::adapt_model) folds the captured
//!   windows into a [`DriftAccumulator`],
//!   re-runs the M-step, and publishes the re-estimated engine as the
//!   next **generation**. Live homes **hot-swap** onto the current
//!   generation lazily, at their next push — a decision boundary — via
//!   [`StreamingRecognizer::swap_model`], so pre-swap decisions are
//!   bit-identical and the continuation equals a fresh resume from the
//!   parked frontier under the new model. Parked homes migrate at
//!   rehydration, fingerprint-directed: a checkpoint from any *known*
//!   generation rolls forward (or back, after
//!   [`rollback_model`](ShardedRouter::rollback_model)) explicitly;
//!   unknown fingerprints quarantine. Generations persist as
//!   [`ModelRecord`] snapshots for roll forward/back across processes.
//!
//! Per-shard counters (live/parked homes, park/rehydrate counts, model
//! swaps, LRU repairs, push latency) are exposed through
//! [`ShardedRouter::stats`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::ObservedTick;
use cace_hdbn::{DriftAccumulator, Lag, SingleHdbn};
use cace_model::ModelError;
use rayon::prelude::*;

use crate::engine::{CaceEngine, Recognition};
use crate::snapshot::{fnv1a64, ModelRecord};
use crate::stream::{resume_shared, stream_shared, HomeRound, ParkedStream, StreamingRecognizer};

fn config_err(what: impl Into<String>) -> ModelError {
    ModelError::InvalidConfig(what.into())
}

/// Where one home's decoder state currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeStatus {
    /// Decoder state is in memory; the next push is a plain DP step.
    Live,
    /// Decoder state is parked as snapshot bytes; the next push
    /// rehydrates it first.
    Parked,
    /// The home hit an unrecoverable per-home fault; later pushes are
    /// skipped and [`ShardedRouter::finish`] reports the error.
    Quarantined,
}

/// One home's slot inside a shard.
struct HomeSlot {
    id: u64,
    /// Index into the router's model registry.
    model: usize,
    /// The model generation this home's live stream currently decodes
    /// under. A lag behind the registry's current generation is repaired
    /// lazily — a hot swap at the home's next push.
    generation: usize,
    /// Last-touch stamp; stale [`Shard::lru`] entries are detected by
    /// comparing against it (lazy deletion).
    touch: u64,
    state: SlotState,
}

/// When and how a model's homes feed the incremental-EM loop. Set per
/// model id via [`ShardedRouter::enable_adaptation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationPolicy {
    /// Ticks per drift window captured on each live stream (≥ 1).
    pub window_ticks: usize,
    /// Minimum accumulated windows before
    /// [`adapt_model`](ShardedRouter::adapt_model) publishes a new
    /// generation (≥ 1); below it, counts keep accumulating.
    pub min_windows: u64,
    /// Prior strength (pseudo-count mass, > 0) anchoring the MAP M-step
    /// at the serving tables: rows the drift windows never visited stay
    /// at the base model, well-observed rows follow the drifted data.
    pub laplace: f64,
}

impl Default for AdaptationPolicy {
    fn default() -> Self {
        Self {
            window_ticks: 32,
            min_windows: 4,
            laplace: 0.5,
        }
    }
}

/// One versioned model registry entry: every generation ever published
/// (index = generation, so indices stay stable across rollbacks), the
/// currently served one, and the adaptation state.
struct ModelEntry {
    name: String,
    engines: Vec<Arc<CaceEngine>>,
    current: usize,
    policy: Option<AdaptationPolicy>,
    drift: Option<DriftAccumulator>,
}

/// An immutable per-model snapshot taken at the top of a round, so the
/// parallel shard fan-out reads one consistent registry state (no shard
/// can observe a mid-round publish).
struct ServeView {
    engine: Arc<CaceEngine>,
    generation: usize,
    capture_window: Option<usize>,
    /// Parameter fingerprints of every known generation, indexed by
    /// generation — the rehydration path uses them to tell a *stale but
    /// known* checkpoint (migrate explicitly) from a foreign one
    /// (quarantine).
    known_fps: Vec<u64>,
}

#[allow(clippy::large_enum_variant)]
enum SlotState {
    Live(Box<StreamingRecognizer<'static>>),
    /// Parked snapshot bytes — either kind: the JSON envelope (UTF-8) or
    /// the binary `kind=stream-bin` envelope. Rehydration sniffs the
    /// header, so a router accepts imports of both regardless of which
    /// kind it writes itself.
    Parked(Vec<u8>),
    Quarantined(ModelError),
}

/// Encodes a live stream's checkpoint in the router's configured kind.
fn park_bytes(stream: &StreamingRecognizer<'_>, binary: bool) -> Vec<u8> {
    let parked = stream.park();
    if binary {
        parked.to_snapshot_bytes()
    } else {
        parked.to_snapshot_string().into_bytes()
    }
}

/// Monotonically growing counters of one shard. Deterministic for a given
/// input sequence — thread count never shows up in here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Homes currently live (decoder state in memory).
    pub live_homes: usize,
    /// Homes currently parked (snapshot bytes only).
    pub parked_homes: usize,
    /// Homes quarantined by a fault.
    pub quarantined_homes: usize,
    /// Times this shard parked a home (LRU eviction or explicit).
    pub parks: u64,
    /// Times this shard rehydrated a parked home.
    pub rehydrations: u64,
    /// Times a home in this shard hot-swapped onto another model
    /// generation (live swap at a push, or fingerprint-directed
    /// migration at rehydration).
    pub swaps: u64,
    /// Times [`enforce_cap`](ShardedRouter::with_live_cap)'s LRU queue
    /// was found missing an entry for a live home and the shard repaired
    /// itself by parking the stalest live home directly (instead of
    /// panicking, which would take the whole shard down).
    pub lru_repairs: u64,
    /// Ticks pushed through this shard.
    pub pushes: u64,
    /// Ticks advanced through a fused batch-cohort kernel pass.
    pub batched_pushes: u64,
    /// Ticks that took the scalar path instead — parked or mid-swap
    /// homes, repeat occurrences of an id within a round, cohorts of
    /// one, or cohort members the kernel refused (mismatched lag or
    /// frontier shape, an actively-pruning beam). Every push is counted
    /// exactly once: `pushes == batched_pushes + fallback_pushes`.
    pub fallback_pushes: u64,
    /// Total wall time spent inside pushes, in nanoseconds (includes any
    /// rehydration the push triggered).
    pub push_nanos: u64,
}

/// Fleet-wide roll-up of [`ShardStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl RouterStats {
    fn sum<T: std::iter::Sum<T>>(&self, f: impl Fn(&ShardStats) -> T) -> T {
        self.shards.iter().map(f).sum()
    }

    /// Homes currently live across all shards.
    pub fn live_homes(&self) -> usize {
        self.sum(|s| s.live_homes)
    }

    /// Homes currently parked across all shards.
    pub fn parked_homes(&self) -> usize {
        self.sum(|s| s.parked_homes)
    }

    /// Homes quarantined across all shards.
    pub fn quarantined_homes(&self) -> usize {
        self.sum(|s| s.quarantined_homes)
    }

    /// Total park operations across all shards.
    pub fn parks(&self) -> u64 {
        self.sum(|s| s.parks)
    }

    /// Total rehydrations across all shards.
    pub fn rehydrations(&self) -> u64 {
        self.sum(|s| s.rehydrations)
    }

    /// Total model-generation hot swaps across all shards.
    pub fn swaps(&self) -> u64 {
        self.sum(|s| s.swaps)
    }

    /// Total LRU self-repairs across all shards (0 in a healthy fleet).
    pub fn lru_repairs(&self) -> u64 {
        self.sum(|s| s.lru_repairs)
    }

    /// Total ticks pushed across all shards.
    pub fn pushes(&self) -> u64 {
        self.sum(|s| s.pushes)
    }

    /// Total ticks advanced through fused batch-cohort kernel passes.
    pub fn batched_pushes(&self) -> u64 {
        self.sum(|s| s.batched_pushes)
    }

    /// Total ticks that took the scalar fallback path (see
    /// [`ShardStats::fallback_pushes`] for what lands there).
    pub fn fallback_pushes(&self) -> u64 {
        self.sum(|s| s.fallback_pushes)
    }

    /// Mean wall time per push, in nanoseconds (0 before the first push).
    pub fn mean_push_nanos(&self) -> u64 {
        self.sum::<u64>(|s| s.push_nanos)
            .checked_div(self.pushes())
            .unwrap_or(0)
    }
}

/// One shard: a disjoint subset of homes, advanced sequentially.
#[derive(Default)]
struct Shard {
    slots: Vec<HomeSlot>,
    /// Home id → index into `slots`.
    index: HashMap<u64, usize>,
    /// LRU queue of `(touch, slot)` pairs, oldest first. Entries whose
    /// `touch` no longer matches the slot's are stale and skipped — lazy
    /// deletion keeps touches O(1).
    lru: std::collections::VecDeque<(u64, usize)>,
    /// Per-shard logical clock stamping touches. Advances only on
    /// in-shard events, so it is independent of thread interleaving.
    clock: u64,
    parks: u64,
    rehydrations: u64,
    swaps: u64,
    lru_repairs: u64,
    pushes: u64,
    batched_pushes: u64,
    fallback_pushes: u64,
    push_nanos: u64,
}

impl Shard {
    fn stats(&self) -> ShardStats {
        let mut stats = ShardStats {
            parks: self.parks,
            rehydrations: self.rehydrations,
            swaps: self.swaps,
            lru_repairs: self.lru_repairs,
            pushes: self.pushes,
            batched_pushes: self.batched_pushes,
            fallback_pushes: self.fallback_pushes,
            push_nanos: self.push_nanos,
            ..ShardStats::default()
        };
        for slot in &self.slots {
            match slot.state {
                SlotState::Live(_) => stats.live_homes += 1,
                SlotState::Parked(_) => stats.parked_homes += 1,
                SlotState::Quarantined(_) => stats.quarantined_homes += 1,
            }
        }
        stats
    }

    fn touch(&mut self, slot: usize) {
        self.clock += 1;
        self.slots[slot].touch = self.clock;
        self.lru.push_back((self.clock, slot));
    }

    fn live_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s.state, SlotState::Live(_)))
            .count()
    }

    /// Parks least-recently-touched live homes until at most `cap` remain
    /// live. Deterministic: eviction order is touch order, which is
    /// in-shard push order.
    fn enforce_cap(&mut self, cap: usize, binary: bool) {
        let mut live = self.live_count();
        while live > cap {
            let Some((touch, slot)) = self.lru.pop_front() else {
                // Invariant breach: more live homes than the cap allows,
                // but the LRU queue has no entry left for any of them.
                // Panicking here would take every home in the shard down
                // with it — instead, *repair*: park the stalest live home
                // directly (min `(touch, slot)`, the same deterministic
                // order the queue would have produced) and record the
                // repair so operators can see the invariant was violated.
                let victim = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s.state, SlotState::Live(_)))
                    .min_by_key(|(i, s)| (s.touch, *i))
                    .map(|(i, _)| i);
                let Some(slot) = victim else {
                    break; // nothing live after all — nothing to park
                };
                if let SlotState::Live(stream) = &self.slots[slot].state {
                    let bytes = park_bytes(stream, binary);
                    self.slots[slot].state = SlotState::Parked(bytes);
                    self.parks += 1;
                    self.lru_repairs += 1;
                    live -= 1;
                }
                continue;
            };
            if self.slots[slot].touch != touch {
                continue; // stale entry — the home was touched again later
            }
            if let SlotState::Live(stream) = &self.slots[slot].state {
                let bytes = park_bytes(stream, binary);
                self.slots[slot].state = SlotState::Parked(bytes);
                self.parks += 1;
                live -= 1;
            }
            // A parked/quarantined slot's entry is simply consumed.
        }
    }

    /// Advances one home by one tick, rehydrating it first if parked and
    /// hot-swapping it onto the current model generation if it lags.
    /// Never panics: every failure quarantines this home only.
    fn push(&mut self, slot: usize, views: &[ServeView], tick: &ObservedTick) -> HomeRound {
        let start = Instant::now();
        let view = &views[self.slots[slot].model];
        // Rehydrate a parked home. Tampered or mismatched snapshot bytes
        // surface here as a Persistence error → quarantine, not a panic.
        // A checkpoint from a *known* other generation of this model is
        // migrated explicitly (roll forward after a publish, roll back
        // after a rollback); an unknown fingerprint falls through to the
        // resume gate and quarantines.
        if let SlotState::Parked(bytes) = &self.slots[slot].state {
            let rehydrated = ParkedStream::from_snapshot_any(bytes).and_then(|parked| {
                let fp = parked.model_fingerprint();
                if fp != view.engine.params.fingerprint() && view.known_fps.contains(&fp) {
                    let migrated = parked.migrated_to(&view.engine);
                    resume_shared(&view.engine, &migrated).map(|s| (s, true))
                } else {
                    resume_shared(&view.engine, &parked).map(|s| (s, false))
                }
            });
            match rehydrated {
                Ok((stream, swapped)) => {
                    self.slots[slot].state = SlotState::Live(Box::new(stream));
                    self.slots[slot].generation = view.generation;
                    self.rehydrations += 1;
                    self.swaps += u64::from(swapped);
                }
                Err(e) => {
                    self.slots[slot].state = SlotState::Quarantined(e.clone());
                    return HomeRound::Failed(e);
                }
            }
        }
        // Lazy hot swap: a live home whose generation lags the registry
        // swaps here, at the decision boundary before this push, so every
        // already-emitted decision stays untouched.
        if self.slots[slot].generation != view.generation {
            let swapped = match &mut self.slots[slot].state {
                SlotState::Live(stream) => Some(stream.swap_model(&view.engine)),
                _ => None,
            };
            match swapped {
                Some(Ok(())) => {
                    self.slots[slot].generation = view.generation;
                    self.swaps += 1;
                }
                Some(Err(e)) => {
                    self.slots[slot].state = SlotState::Quarantined(e.clone());
                    return HomeRound::Failed(e);
                }
                None => {}
            }
        }
        // Late-enable drift capture on homes that went live before the
        // model's adaptation policy was set.
        if let (Some(window), SlotState::Live(stream)) =
            (view.capture_window, &mut self.slots[slot].state)
        {
            if !stream.drift_capture_enabled() {
                stream.capture_drift(window);
            }
        }
        let outcome = match &mut self.slots[slot].state {
            SlotState::Quarantined(_) => HomeRound::Quarantined,
            SlotState::Parked(_) => unreachable!("rehydrated or quarantined above"),
            SlotState::Live(stream) => match stream.push(tick) {
                Ok(decision) => HomeRound::Advanced(decision),
                Err(e) => {
                    self.slots[slot].state = SlotState::Quarantined(e.clone());
                    HomeRound::Failed(e)
                }
            },
        };
        if matches!(outcome, HomeRound::Advanced(_)) {
            self.touch(slot);
        }
        self.pushes += 1;
        self.fallback_pushes += 1;
        self.push_nanos += start.elapsed().as_nanos() as u64;
        outcome
    }

    /// Advances a cohort of live, current-generation homes sharing one
    /// observed tick through the fused batched kernel
    /// ([`crate::stream::push_cohort`]). Members that lost live status
    /// since cohort formation (an earlier cohort's cap enforcement can
    /// park them) drop to the scalar [`Shard::push`] path. Outcomes are
    /// aligned `(input position, round)` pairs.
    fn push_cohort_members(
        &mut self,
        members: &[(usize, usize)],
        views: &[ServeView],
        tick: &ObservedTick,
    ) -> Vec<(usize, HomeRound)> {
        let start = Instant::now();
        let mut out = Vec::with_capacity(members.len());
        let mut live: Vec<(usize, usize)> = Vec::with_capacity(members.len());
        let mut demoted: Vec<(usize, usize)> = Vec::new();
        for &(pos, slot) in members {
            if matches!(self.slots[slot].state, SlotState::Live(_)) {
                live.push((pos, slot));
            } else {
                demoted.push((pos, slot));
            }
        }
        if live.len() < 2 {
            // Nothing left to fuse — run the whole group scalar, in
            // input order.
            live.clear();
            demoted = members.to_vec();
        }
        // Late-enable drift capture exactly where the scalar path does:
        // before the push.
        for &(_, slot) in &live {
            let view = &views[self.slots[slot].model];
            if let (Some(window), SlotState::Live(stream)) =
                (view.capture_window, &mut self.slots[slot].state)
            {
                if !stream.drift_capture_enabled() {
                    stream.capture_drift(window);
                }
            }
        }
        // Lift the member streams out of their slots so the cohort can
        // borrow all of them mutably at once; every slot gets its state
        // written back (or a quarantine) below.
        let mut streams: Vec<Box<StreamingRecognizer<'static>>> = live
            .iter()
            .map(|&(_, slot)| {
                match std::mem::replace(&mut self.slots[slot].state, SlotState::Parked(Vec::new()))
                {
                    SlotState::Live(stream) => stream,
                    _ => unreachable!("liveness checked above"),
                }
            })
            .collect();
        if !streams.is_empty() {
            let mut refs: Vec<&mut StreamingRecognizer<'static>> =
                streams.iter_mut().map(|b| &mut **b).collect();
            let outcome = crate::stream::push_cohort(&mut refs, tick);
            self.batched_pushes += outcome.batched as u64;
            self.fallback_pushes += outcome.fallback as u64;
            for ((&(pos, slot), stream), result) in live.iter().zip(streams).zip(outcome.results) {
                match result {
                    Ok(decision) => {
                        self.slots[slot].state = SlotState::Live(stream);
                        self.touch(slot);
                        out.push((pos, HomeRound::Advanced(decision)));
                    }
                    Err(e) => {
                        self.slots[slot].state = SlotState::Quarantined(e.clone());
                        out.push((pos, HomeRound::Failed(e)));
                    }
                }
            }
            self.pushes += live.len() as u64;
            self.push_nanos += start.elapsed().as_nanos() as u64;
        }
        for (pos, slot) in demoted {
            let round = self.push(slot, views, tick);
            out.push((pos, round));
        }
        out
    }
}

/// The serving front end: N worker shards over a shared model registry,
/// an LRU live-state cap per shard, park/rehydrate on demand. See the
/// [module docs](self) for the design and guarantees.
pub struct ShardedRouter {
    models: Vec<ModelEntry>,
    shards: Vec<Shard>,
    /// Max live homes per shard; overflow is parked, oldest first.
    live_cap: usize,
    /// Park in the compact binary snapshot kind (the default) instead
    /// of JSON.
    binary_parking: bool,
}

/// Default shard count: a fixed grid (never derived from the machine's
/// core count) so shard assignment is stable across deployments.
pub const DEFAULT_SHARDS: usize = 8;

impl ShardedRouter {
    /// An empty router with [`DEFAULT_SHARDS`] shards and no live cap.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty router over `shards` worker shards (clamped to ≥ 1).
    ///
    /// The shard count is part of the home→shard mapping; pick it once,
    /// before homes are added.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            models: Vec::new(),
            shards: (0..shards).map(|_| Shard::default()).collect(),
            live_cap: usize::MAX,
            binary_parking: true,
        }
    }

    /// Caps live decoder state at `cap` homes **per shard** (clamped to
    /// ≥ 1); the least-recently-pushed overflow is transparently parked.
    /// Applies to current and future homes from the next push on.
    pub fn with_live_cap(mut self, cap: usize) -> Self {
        self.live_cap = cap.max(1);
        self
    }

    /// Parks evicted homes in the compact binary snapshot kind
    /// ([`ParkedStream::to_snapshot_bytes`]) — several times smaller and
    /// cheaper per park/rehydrate cycle than JSON, with bit-identical
    /// continuations. This is the **default**; the method is kept so
    /// explicit configuration keeps compiling.
    pub fn with_binary_parking(mut self) -> Self {
        self.binary_parking = true;
        self
    }

    /// Parks evicted homes as the portable JSON snapshot kind
    /// ([`ParkedStream::to_snapshot_string`]) instead of the compact
    /// binary default — human-inspectable parked bytes at a size and
    /// speed cost. Rehydration always sniffs the header, so flipping
    /// parking kinds between runs (or importing the other kind) is
    /// safe, and [`export_home`](Self::export_home) emits JSON under
    /// either setting.
    pub fn with_json_parking(mut self) -> Self {
        self.binary_parking = false;
        self
    }

    /// Number of shards in the grid.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the given home id maps to — a pure function of the id
    /// and the shard count.
    pub fn shard_of(&self, id: u64) -> usize {
        (fnv1a64(&id.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    /// Registers a trained engine under `name` as generation 0; homes
    /// reference it by that name and share it fleet-wide. Later
    /// generations come from [`adapt_model`](Self::adapt_model),
    /// [`publish_model`](Self::publish_model), or
    /// [`import_model`](Self::import_model).
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when `name` is already registered.
    pub fn register_model(
        &mut self,
        name: impl Into<String>,
        engine: Arc<CaceEngine>,
    ) -> Result<(), ModelError> {
        let name = name.into();
        if self.models.iter().any(|m| m.name == name) {
            return Err(config_err(format!("model `{name}` is already registered")));
        }
        self.models.push(ModelEntry {
            name,
            engines: vec![engine],
            current: 0,
            policy: None,
            drift: None,
        });
        Ok(())
    }

    fn model_index(&self, model: &str) -> Result<usize, ModelError> {
        self.models
            .iter()
            .position(|m| m.name == model)
            .ok_or_else(|| config_err(format!("model `{model}` is not registered")))
    }

    /// The per-model registry snapshot one round serves under.
    fn serve_views(&self) -> Vec<ServeView> {
        self.models
            .iter()
            .map(|m| ServeView {
                engine: Arc::clone(&m.engines[m.current]),
                generation: m.current,
                capture_window: m.policy.map(|p| p.window_ticks),
                known_fps: m.engines.iter().map(|e| e.params.fingerprint()).collect(),
            })
            .collect()
    }

    /// Registers a home served by `model`, opening a fresh live stream.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or a duplicate
    /// home id.
    pub fn add_home(&mut self, id: u64, model: &str, lag: Lag) -> Result<(), ModelError> {
        let model = self.model_index(model)?;
        let entry = &self.models[model];
        let generation = entry.current;
        let mut stream = stream_shared(&entry.engines[generation], lag);
        if let Some(policy) = entry.policy {
            stream.capture_drift(policy.window_ticks);
        }
        self.insert(id, model, generation, SlotState::Live(Box::new(stream)))
    }

    /// Registers a home directly from parked snapshot bytes — e.g. state
    /// handed over from another process. The checkpoint carries its own
    /// lag and decoder config; the bytes are *not* validated here — a bad
    /// checkpoint quarantines the home on its first push (never panics),
    /// exactly like bytes that went bad while parked.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or a duplicate
    /// home id.
    pub fn import_home(
        &mut self,
        id: u64,
        model: &str,
        snapshot: String,
    ) -> Result<(), ModelError> {
        let model = self.model_index(model)?;
        let generation = self.models[model].current;
        self.insert(
            id,
            model,
            generation,
            SlotState::Parked(snapshot.into_bytes()),
        )
    }

    fn insert(
        &mut self,
        id: u64,
        model: usize,
        generation: usize,
        state: SlotState,
    ) -> Result<(), ModelError> {
        let shard = self.shard_of(id);
        let shard = &mut self.shards[shard];
        if shard.index.contains_key(&id) {
            return Err(config_err(format!("home id {id} is already registered")));
        }
        let slot = shard.slots.len();
        shard.slots.push(HomeSlot {
            id,
            model,
            generation,
            touch: 0,
            state,
        });
        shard.index.insert(id, slot);
        if matches!(shard.slots[slot].state, SlotState::Live(_)) {
            shard.touch(slot);
            shard.enforce_cap(self.live_cap, self.binary_parking);
        }
        Ok(())
    }

    /// Total homes routed (live, parked, and quarantined).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.slots.len()).sum()
    }

    /// Whether no homes are routed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.slots.is_empty())
    }

    /// Where the given home's state currently lives, if it is routed.
    pub fn home_status(&self, id: u64) -> Option<HomeStatus> {
        let shard = &self.shards[self.shard_of(id)];
        let slot = *shard.index.get(&id)?;
        Some(match shard.slots[slot].state {
            SlotState::Live(_) => HomeStatus::Live,
            SlotState::Parked(_) => HomeStatus::Parked,
            SlotState::Quarantined(_) => HomeStatus::Quarantined,
        })
    }

    /// Ids and errors of the homes quarantined so far, sorted by id.
    pub fn quarantined(&self) -> Vec<(u64, &ModelError)> {
        let mut out: Vec<(u64, &ModelError)> = self
            .shards
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter_map(|slot| match &slot.state {
                SlotState::Quarantined(e) => Some((slot.id, e)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Per-shard counters, indexed by shard.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            shards: self.shards.iter().map(Shard::stats).collect(),
        }
    }

    /// Parks the given live home immediately (no-op when already parked).
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown home id;
    /// [`ModelError::Persistence`] when the home is quarantined.
    pub fn park_home(&mut self, id: u64) -> Result<(), ModelError> {
        let shard = self.shard_of(id);
        let shard = &mut self.shards[shard];
        let slot = *shard
            .index
            .get(&id)
            .ok_or_else(|| config_err(format!("home id {id} is not routed")))?;
        match &shard.slots[slot].state {
            SlotState::Parked(_) => Ok(()),
            SlotState::Quarantined(e) => Err(e.clone()),
            SlotState::Live(stream) => {
                let bytes = park_bytes(stream, self.binary_parking);
                shard.slots[slot].state = SlotState::Parked(bytes);
                shard.parks += 1;
                Ok(())
            }
        }
    }

    /// The parked snapshot of the given home as the portable JSON kind —
    /// parking it first if it is live, re-encoding if it was parked in
    /// the binary kind. This is the migration/handover export; JSON is
    /// the interchange format regardless of how this router parks
    /// internally.
    ///
    /// # Errors
    /// Those of [`park_home`](Self::park_home), plus
    /// [`ModelError::Persistence`] when the parked bytes no longer
    /// decode.
    pub fn export_home(&mut self, id: u64) -> Result<String, ModelError> {
        self.park_home(id)?;
        let shard = &self.shards[self.shard_of(id)];
        let slot = shard.index[&id];
        match &shard.slots[slot].state {
            SlotState::Parked(bytes) => match std::str::from_utf8(bytes) {
                Ok(text) if !text.contains("kind=stream-bin") => Ok(text.to_string()),
                _ => Ok(ParkedStream::from_snapshot_any(bytes)?.to_snapshot_string()),
            },
            _ => unreachable!("park_home left the slot parked"),
        }
    }

    /// Turns on online adaptation for `model`: every live home of the
    /// model starts capturing drift windows of `policy.window_ticks`
    /// ticks (parked homes pick capture up at rehydration), and
    /// [`adapt_model`](Self::adapt_model) becomes available. Capture is
    /// strictly observational — decisions are unchanged until a new
    /// generation is actually published and swapped in.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or a degenerate
    /// policy (`window_ticks`/`min_windows` of 0, non-positive or
    /// non-finite `laplace`).
    pub fn enable_adaptation(
        &mut self,
        model: &str,
        policy: AdaptationPolicy,
    ) -> Result<(), ModelError> {
        let idx = self.model_index(model)?;
        if policy.window_ticks == 0 || policy.min_windows == 0 {
            return Err(config_err(
                "adaptation policy needs window_ticks >= 1 and min_windows >= 1",
            ));
        }
        if !policy.laplace.is_finite() || policy.laplace <= 0.0 {
            return Err(config_err(
                "adaptation policy needs a positive, finite laplace mass",
            ));
        }
        let entry = &mut self.models[idx];
        let params = Arc::clone(entry.engines[entry.current].hdbn_params());
        entry.policy = Some(policy);
        entry.drift = Some(DriftAccumulator::new(&params));
        for shard in &mut self.shards {
            for slot in &mut shard.slots {
                if slot.model != idx {
                    continue;
                }
                if let SlotState::Live(stream) = &mut slot.state {
                    if !stream.drift_capture_enabled() {
                        stream.capture_drift(policy.window_ticks);
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs one background adaptation step for `model`: harvests the
    /// completed drift windows from its live homes (in shard/slot order —
    /// deterministic for a given push history), folds them into the
    /// model's [`DriftAccumulator`], and — once the policy's
    /// `min_windows` is reached — re-runs the M-step and publishes the
    /// re-estimated engine as the next generation. Live homes hot-swap
    /// onto it lazily at their next push.
    ///
    /// Returns the new generation index, or `None` when the accumulator
    /// is still below `min_windows` (counts are kept for the next call).
    /// Windows the E-step cannot process are skipped — adaptation data is
    /// best-effort by design and never takes the fleet down.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or one without a
    /// policy; re-estimation errors surface as the M-step's own errors.
    pub fn adapt_model(&mut self, model: &str) -> Result<Option<usize>, ModelError> {
        let idx = self.model_index(model)?;
        let policy = self.models[idx].policy.ok_or_else(|| {
            config_err(format!(
                "model `{model}` has no adaptation policy (call enable_adaptation first)"
            ))
        })?;
        let engine = Arc::clone(&self.models[idx].engines[self.models[idx].current]);
        let observer = SingleHdbn::from_shared(Arc::clone(engine.hdbn_params()))
            .with_decoder(engine.config().decoder);
        let mut drift = self.models[idx]
            .drift
            .take()
            .unwrap_or_else(|| DriftAccumulator::new(engine.hdbn_params()));
        for shard in &mut self.shards {
            for slot in &mut shard.slots {
                if slot.model != idx {
                    continue;
                }
                if let SlotState::Live(stream) = &mut slot.state {
                    for window in stream.take_drift_windows() {
                        // `observe` leaves the accumulator untouched on
                        // failure, so a bad window is dropped whole.
                        let _ = drift.observe(&observer, &window);
                    }
                }
            }
        }
        let outcome = if drift.windows() >= policy.min_windows {
            let params = drift.reestimate(engine.hdbn_params(), policy.laplace)?;
            let adapted = Arc::new(engine.with_params(params)?);
            let entry = &mut self.models[idx];
            entry.engines.push(adapted);
            entry.current = entry.engines.len() - 1;
            drift = DriftAccumulator::new(entry.engines[entry.current].hdbn_params());
            Some(entry.current)
        } else {
            None
        };
        self.models[idx].drift = Some(drift);
        Ok(outcome)
    }

    /// Publishes `engine` as the next generation of `model` and makes it
    /// current — the manual counterpart of
    /// [`adapt_model`](Self::adapt_model) (e.g. a retrain from fresh
    /// ground truth). Live homes hot-swap lazily at their next push;
    /// returns the new generation index.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or an engine
    /// whose strategy/decoder configuration differs from the serving
    /// one's (streams could not swap onto it).
    pub fn publish_model(
        &mut self,
        model: &str,
        engine: Arc<CaceEngine>,
    ) -> Result<usize, ModelError> {
        let idx = self.model_index(model)?;
        let entry = &mut self.models[idx];
        let current = &entry.engines[entry.current];
        if engine.config().strategy != current.config().strategy
            || engine.config().decoder != current.config().decoder
        {
            return Err(config_err(format!(
                "published engine's strategy/decoder config does not match \
                 model `{model}`'s serving configuration"
            )));
        }
        entry.engines.push(engine);
        entry.current = entry.engines.len() - 1;
        if entry.policy.is_some() {
            entry.drift = Some(DriftAccumulator::new(
                entry.engines[entry.current].hdbn_params(),
            ));
        }
        Ok(entry.current)
    }

    /// Rolls `model` back (or forward) to an already-published
    /// generation. Live homes swap onto it lazily at their next push —
    /// the same fingerprint-directed migration as any other generation
    /// move. Generation indices are stable: publishing after a rollback
    /// appends, it never overwrites history.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or generation.
    pub fn rollback_model(&mut self, model: &str, generation: usize) -> Result<(), ModelError> {
        let idx = self.model_index(model)?;
        let entry = &mut self.models[idx];
        if generation >= entry.engines.len() {
            return Err(config_err(format!(
                "model `{model}` has generations 0..={}, not {generation}",
                entry.engines.len() - 1
            )));
        }
        entry.current = generation;
        if entry.policy.is_some() {
            entry.drift = Some(DriftAccumulator::new(
                entry.engines[generation].hdbn_params(),
            ));
        }
        Ok(())
    }

    /// The currently served generation index of `model`.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model.
    pub fn model_generation(&self, model: &str) -> Result<usize, ModelError> {
        Ok(self.models[self.model_index(model)?].current)
    }

    /// Exports one generation of `model` as a versioned [`ModelRecord`]
    /// snapshot string — the archive format for roll forward/back across
    /// processes (pass it to [`import_model`](Self::import_model), or
    /// [`ModelRecord::from_snapshot_str`] directly).
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] on an unknown model or generation.
    pub fn export_model(&self, model: &str, generation: usize) -> Result<String, ModelError> {
        let entry = &self.models[self.model_index(model)?];
        let engine = entry.engines.get(generation).ok_or_else(|| {
            config_err(format!(
                "model `{model}` has generations 0..={}, not {generation}",
                entry.engines.len() - 1
            ))
        })?;
        Ok(ModelRecord {
            name: entry.name.clone(),
            generation,
            engine: CaceEngine::clone(engine),
        }
        .to_snapshot_string())
    }

    /// Imports a [`ModelRecord`] snapshot: if the record's model name is
    /// already registered, its engine is published as the next (current)
    /// generation — a roll forward; otherwise the name is registered
    /// fresh with this engine as generation 0. Returns the generation
    /// index it now serves as (the record's own generation index is
    /// provenance from the exporting fleet, not an index here).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on snapshot verification failure;
    /// [`ModelError::InvalidConfig`] when publishing onto an existing
    /// model with a mismatched configuration.
    pub fn import_model(&mut self, snapshot: &str) -> Result<usize, ModelError> {
        let record = ModelRecord::from_snapshot_str(snapshot)?;
        let engine = Arc::new(record.engine);
        if self.models.iter().any(|m| m.name == record.name) {
            self.publish_model(&record.name, engine)
        } else {
            self.register_model(record.name, engine)?;
            Ok(0)
        }
    }

    /// Delivers one round of ticks, fanned out across shards in parallel.
    /// Outcomes are returned aligned with `ticks`. Within a shard, ticks
    /// apply in their `ticks` order; the shard grid is fixed — results
    /// are bit-identical under any thread count.
    ///
    /// A home may appear multiple times in one round (its ticks apply in
    /// order); a home with no tick this round is simply not listed.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when any id is not routed — no tick
    /// is delivered in that case (per-home failures are *not* errors
    /// here; they come back as [`HomeRound::Failed`]).
    pub fn push_round(
        &mut self,
        ticks: &[(u64, &ObservedTick)],
    ) -> Result<Vec<HomeRound>, ModelError> {
        // Group input positions by shard first, so an unknown id aborts
        // the round before any home advances.
        let mut by_shard: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.shards.len()];
        for (pos, (id, _)) in ticks.iter().enumerate() {
            let shard = self.shard_of(*id);
            let slot = *self.shards[shard]
                .index
                .get(id)
                .ok_or_else(|| config_err(format!("home id {id} is not routed")))?;
            by_shard[shard].push((pos, slot));
        }
        let live_cap = self.live_cap;
        let binary = self.binary_parking;
        let views = self.serve_views();
        let views = &views;
        let mut work: Vec<(&mut Shard, Vec<(usize, usize)>)> =
            self.shards.iter_mut().zip(by_shard).collect();
        let mut outcomes: Vec<Vec<(usize, HomeRound)>> = work
            .par_iter_mut()
            .map(|(shard, work)| {
                let mut out = Vec::with_capacity(work.len());
                // Cohort formation: the first occurrence of each live,
                // current-generation home joins the cohort of its
                // (model, tick) pair; everything else — parked,
                // mid-swap, quarantined, repeat occurrences of an id —
                // takes the scalar path afterwards, in input order.
                // Grouping is a pure function of the input list and the
                // slot states at the top of the round, so outcomes stay
                // bit-identical under any thread count.
                let mut claimed: HashSet<usize> = HashSet::new();
                let mut cohorts: Vec<((usize, *const ObservedTick), Vec<(usize, usize)>)> =
                    Vec::new();
                let mut scalar: Vec<(usize, usize)> = Vec::new();
                for &(pos, slot) in work.iter() {
                    let s = &shard.slots[slot];
                    let view = &views[s.model];
                    if matches!(s.state, SlotState::Live(_))
                        && s.generation == view.generation
                        && claimed.insert(slot)
                    {
                        let key = (s.model, ticks[pos].1 as *const ObservedTick);
                        match cohorts.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, members)) => members.push((pos, slot)),
                            None => cohorts.push((key, vec![(pos, slot)])),
                        }
                    } else {
                        scalar.push((pos, slot));
                    }
                }
                for (_, members) in cohorts {
                    let tick = ticks[members[0].0].1;
                    if members.len() >= 2 {
                        out.extend(shard.push_cohort_members(&members, views, tick));
                        shard.enforce_cap(live_cap, binary);
                    } else {
                        for (pos, slot) in members {
                            out.push((pos, shard.push(slot, views, tick)));
                            shard.enforce_cap(live_cap, binary);
                        }
                    }
                }
                for (pos, slot) in scalar {
                    out.push((pos, shard.push(slot, views, ticks[pos].1)));
                    shard.enforce_cap(live_cap, binary);
                }
                out
            })
            .collect();
        let mut aligned: Vec<Option<HomeRound>> = vec![None; ticks.len()];
        for (pos, round) in outcomes.drain(..).flatten() {
            aligned[pos] = Some(round);
        }
        Ok(aligned
            .into_iter()
            .map(|r| r.expect("every input position got an outcome"))
            .collect())
    }

    /// Finishes every home in parallel (rehydrating parked ones),
    /// returning per-home results **sorted by home id**: the
    /// session-level [`Recognition`] for healthy homes, the quarantining
    /// error for faulted ones.
    ///
    /// Finishing never swaps: a parked home resumes under the generation
    /// its checkpoint fingerprint identifies (current or not), so the
    /// result is a pure continuation of the model that actually decoded
    /// its ticks.
    pub fn finish(self) -> Vec<(u64, Result<Recognition, ModelError>)> {
        let Self { models, shards, .. } = self;
        let models = &models;
        let mut slot_lists: Vec<Vec<HomeSlot>> = shards.into_iter().map(|s| s.slots).collect();
        let per_shard: Vec<Vec<(u64, Result<Recognition, ModelError>)>> = slot_lists
            .par_iter_mut()
            .map(|slots| {
                std::mem::take(slots)
                    .into_iter()
                    .map(|slot| {
                        let result = match slot.state {
                            SlotState::Quarantined(e) => Err(e),
                            SlotState::Live(stream) => stream.finish(),
                            SlotState::Parked(bytes) => ParkedStream::from_snapshot_any(&bytes)
                                .and_then(|parked| {
                                    let entry = &models[slot.model];
                                    let engine = entry
                                        .engines
                                        .iter()
                                        .find(|e| {
                                            e.params.fingerprint() == parked.model_fingerprint()
                                        })
                                        .unwrap_or(&entry.engines[entry.current]);
                                    resume_shared(engine, &parked)
                                })
                                .and_then(|stream| stream.finish()),
                        };
                        (slot.id, result)
                    })
                    .collect()
            })
            .collect();
        let mut out: Vec<(u64, Result<Recognition, ModelError>)> =
            per_shard.into_iter().flatten().collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

impl Default for ShardedRouter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CaceConfig;
    use cace_behavior::{
        cace_grammar, generate_cace_dataset, session::train_test_split, Session, SessionConfig,
    };

    fn corpus() -> (Vec<Session>, Vec<Session>) {
        let sessions = generate_cace_dataset(
            &cace_grammar(),
            1,
            4,
            &SessionConfig::tiny().with_ticks(60),
            57,
        );
        train_test_split(sessions, 0.75)
    }

    fn arc_engine(train: &[Session]) -> Arc<CaceEngine> {
        Arc::new(CaceEngine::train(train, &CaceConfig::default()).unwrap())
    }

    #[test]
    fn registry_rejects_duplicates_and_unknowns() {
        let (train, _) = corpus();
        let engine = arc_engine(&train);
        let mut router = ShardedRouter::new();
        router.register_model("cace", Arc::clone(&engine)).unwrap();
        assert!(matches!(
            router.register_model("cace", Arc::clone(&engine)),
            Err(ModelError::InvalidConfig(_))
        ));
        assert!(matches!(
            router.add_home(1, "missing", Lag::Unbounded),
            Err(ModelError::InvalidConfig(_))
        ));
        router.add_home(1, "cace", Lag::Unbounded).unwrap();
        assert!(matches!(
            router.add_home(1, "cace", Lag::Unbounded),
            Err(ModelError::InvalidConfig(_))
        ));
        assert_eq!(router.len(), 1);
    }

    #[test]
    fn shard_assignment_is_a_pure_function_of_id_and_grid() {
        let a = ShardedRouter::with_shards(8);
        let b = ShardedRouter::with_shards(8);
        for id in 0..256 {
            assert_eq!(a.shard_of(id), b.shard_of(id));
            assert!(a.shard_of(id) < 8);
        }
        // All shards get some traffic from a plain id range.
        let hit: std::collections::HashSet<usize> = (0..256).map(|id| a.shard_of(id)).collect();
        assert_eq!(hit.len(), 8);
    }

    #[test]
    fn capped_router_parks_and_rehydrates_with_identical_decisions() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let lag = Lag::Fixed(4);
        let n_homes = 6u64;

        let mut capped = ShardedRouter::with_shards(2).with_live_cap(1);
        let mut uncapped = ShardedRouter::with_shards(2);
        for router in [&mut capped, &mut uncapped] {
            router.register_model("cace", Arc::clone(&engine)).unwrap();
            for id in 0..n_homes {
                router.add_home(id, "cace", lag).unwrap();
            }
        }
        let session = &test[0];
        for tick in &session.ticks {
            let round: Vec<(u64, &ObservedTick)> =
                (0..n_homes).map(|id| (id, &tick.observed)).collect();
            let a = capped.push_round(&round).unwrap();
            let b = uncapped.push_round(&round).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.decision(), y.decision());
                assert!(matches!(x, HomeRound::Advanced(_)));
            }
        }
        let stats = capped.stats();
        assert!(
            stats.parks() > 0 && stats.rehydrations() > 0,
            "a cap of 1 live home over 3 homes/shard must cycle: {stats:?}"
        );
        assert_eq!(uncapped.stats().parks(), 0);
        assert!(stats.pushes() > 0 && stats.mean_push_nanos() > 0);

        let a = capped.finish();
        let b = uncapped.finish();
        assert_eq!(a.len(), n_homes as usize);
        for ((id_a, rec_a), (id_b, rec_b)) in a.iter().zip(&b) {
            assert_eq!(id_a, id_b);
            let (rec_a, rec_b) = (rec_a.as_ref().unwrap(), rec_b.as_ref().unwrap());
            assert_eq!(rec_a.macros, rec_b.macros);
            assert_eq!(rec_a.states_explored, rec_b.states_explored);
            assert_eq!(rec_a.transition_ops, rec_b.transition_ops);
        }
    }

    #[test]
    fn lru_eviction_order_is_deterministic() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        // One shard, cap 2: pushing A, B, C in order must park exactly
        // the least-recently-pushed home, every time.
        let mut router = ShardedRouter::with_shards(1).with_live_cap(2);
        router.register_model("cace", engine).unwrap();
        for id in [10, 20, 30] {
            router.add_home(id, "cace", Lag::Unbounded).unwrap();
        }
        // Registration order itself is LRU order: adding C over the cap
        // parked A (the oldest registration).
        assert_eq!(router.home_status(10), Some(HomeStatus::Parked));
        assert_eq!(router.home_status(20), Some(HomeStatus::Live));
        assert_eq!(router.home_status(30), Some(HomeStatus::Live));

        let tick = &test[0].ticks[0].observed;
        // Touch A: it rehydrates, and B — now the coldest — is parked.
        router.push_round(&[(10, tick)]).unwrap();
        assert_eq!(router.home_status(10), Some(HomeStatus::Live));
        assert_eq!(router.home_status(20), Some(HomeStatus::Parked));
        assert_eq!(router.home_status(30), Some(HomeStatus::Live));
        // Touch C then B: A is the coldest again.
        router.push_round(&[(30, tick), (20, tick)]).unwrap();
        assert_eq!(router.home_status(10), Some(HomeStatus::Parked));
        assert_eq!(router.home_status(20), Some(HomeStatus::Live));
        assert_eq!(router.home_status(30), Some(HomeStatus::Live));
        assert_eq!(router.stats().parks(), 3);
    }

    #[test]
    fn tampered_parked_bytes_quarantine_only_that_home() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let mut router = ShardedRouter::with_shards(1);
        router.register_model("cace", Arc::clone(&engine)).unwrap();
        router.add_home(1, "cace", Lag::Unbounded).unwrap();
        router.add_home(2, "cace", Lag::Unbounded).unwrap();

        let session = &test[0];
        for tick in &session.ticks[..5] {
            router
                .push_round(&[(1, &tick.observed), (2, &tick.observed)])
                .unwrap();
        }
        // Corrupt home 1's parked bytes out-of-band, then re-import them.
        let mut bytes = router.export_home(1).unwrap();
        let flip_at = bytes.rfind("0.").unwrap();
        bytes.replace_range(flip_at..flip_at + 1, "9");
        let mut router2 = ShardedRouter::with_shards(1);
        router2.register_model("cace", Arc::clone(&engine)).unwrap();
        router2.import_home(1, "cace", bytes).unwrap();
        router2.add_home(2, "cace", Lag::Unbounded).unwrap();

        let round = router2
            .push_round(&[
                (1, &session.ticks[5].observed),
                (2, &session.ticks[5].observed),
            ])
            .unwrap();
        assert!(matches!(
            round[0],
            HomeRound::Failed(ModelError::Persistence { .. })
        ));
        assert!(matches!(round[1], HomeRound::Advanced(_)));
        // The fault sticks; the shard-mate keeps serving every round.
        let round = router2
            .push_round(&[
                (1, &session.ticks[6].observed),
                (2, &session.ticks[6].observed),
            ])
            .unwrap();
        assert!(matches!(round[0], HomeRound::Quarantined));
        assert!(matches!(round[1], HomeRound::Advanced(_)));
        assert_eq!(router2.quarantined().len(), 1);
        assert_eq!(router2.quarantined()[0].0, 1);
        let finished = router2.finish();
        assert!(finished[0].1.is_err());
        assert!(finished[1].1.is_ok());
    }

    #[test]
    fn binary_parking_matches_json_parking_bit_identically() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let lag = Lag::Fixed(4);
        let n_homes = 6u64;

        // Binary parking is the default; JSON stays available (and
        // readable) via the explicit opt-out.
        let mut json = ShardedRouter::with_shards(2)
            .with_live_cap(1)
            .with_json_parking();
        let mut bin = ShardedRouter::with_shards(2).with_live_cap(1);
        for router in [&mut json, &mut bin] {
            router.register_model("cace", Arc::clone(&engine)).unwrap();
            for id in 0..n_homes {
                router.add_home(id, "cace", lag).unwrap();
            }
        }
        let session = &test[0];
        for tick in &session.ticks {
            let round: Vec<(u64, &ObservedTick)> =
                (0..n_homes).map(|id| (id, &tick.observed)).collect();
            let a = json.push_round(&round).unwrap();
            let b = bin.push_round(&round).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.decision(), y.decision());
            }
        }
        assert!(bin.stats().parks() > 0 && bin.stats().rehydrations() > 0);
        assert!(json.stats().parks() > 0 && json.stats().rehydrations() > 0);

        // A binary-parked home exports as portable JSON, loadable by the
        // plain JSON reader.
        let exported = bin.export_home(0).unwrap();
        assert!(exported.starts_with("CACE-SNAPSHOT v3 fnv1a64="));
        assert!(ParkedStream::from_snapshot_str(&exported).is_ok());

        let a = json.finish();
        let b = bin.finish();
        for ((id_a, rec_a), (id_b, rec_b)) in a.iter().zip(&b) {
            assert_eq!(id_a, id_b);
            let (rec_a, rec_b) = (rec_a.as_ref().unwrap(), rec_b.as_ref().unwrap());
            assert_eq!(rec_a.macros, rec_b.macros);
            assert_eq!(rec_a.states_explored, rec_b.states_explored);
            assert_eq!(rec_a.transition_ops, rec_b.transition_ops);
        }
    }

    #[test]
    fn round_cohorts_match_per_home_rounds_and_count_batched_pushes() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let lag = Lag::Fixed(4);
        let n_homes = 6u64;

        let mut fused = ShardedRouter::with_shards(2);
        let mut scalar = ShardedRouter::with_shards(2);
        for router in [&mut fused, &mut scalar] {
            router.register_model("cace", Arc::clone(&engine)).unwrap();
            for id in 0..n_homes {
                router.add_home(id, "cace", lag).unwrap();
            }
        }
        let session = &test[0];
        for tick in &session.ticks {
            let round: Vec<(u64, &ObservedTick)> =
                (0..n_homes).map(|id| (id, &tick.observed)).collect();
            let a = fused.push_round(&round).unwrap();
            // The reference delivers the same ticks one home per round,
            // so every push takes the proven scalar path.
            let b: Vec<HomeRound> = (0..n_homes)
                .map(|id| {
                    scalar
                        .push_round(&[(id, &tick.observed)])
                        .unwrap()
                        .remove(0)
                })
                .collect();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.decision(), y.decision());
                assert!(matches!(x, HomeRound::Advanced(_)));
            }
        }
        let fs = fused.stats();
        let ss = scalar.stats();
        assert!(fs.batched_pushes() > 0, "uniform fleet must batch: {fs:?}");
        assert_eq!(fs.pushes(), fs.batched_pushes() + fs.fallback_pushes());
        assert_eq!(ss.batched_pushes(), 0);
        assert_eq!(ss.pushes(), ss.fallback_pushes());

        // A repeated id in one round batches its first occurrence only;
        // the repeat applies afterwards, in order, via the scalar path.
        let (t0, t1) = (&session.ticks[0].observed, &session.ticks[1].observed);
        let a = fused.push_round(&[(0, t0), (1, t0), (0, t1)]).unwrap();
        let b0 = scalar.push_round(&[(0, t0), (1, t0)]).unwrap();
        let b1 = scalar.push_round(&[(0, t1)]).unwrap();
        assert_eq!(a[0].decision(), b0[0].decision());
        assert_eq!(a[1].decision(), b0[1].decision());
        assert_eq!(a[2].decision(), b1[0].decision());

        let a = fused.finish();
        let b = scalar.finish();
        for ((id_a, rec_a), (id_b, rec_b)) in a.iter().zip(&b) {
            assert_eq!(id_a, id_b);
            let (rec_a, rec_b) = (rec_a.as_ref().unwrap(), rec_b.as_ref().unwrap());
            assert_eq!(rec_a.macros, rec_b.macros);
            assert_eq!(rec_a.states_explored, rec_b.states_explored);
            assert_eq!(rec_a.transition_ops, rec_b.transition_ops);
        }
    }

    #[test]
    fn enforce_cap_repairs_a_missing_lru_entry_without_panicking() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let mut router = ShardedRouter::with_shards(1);
        router.register_model("cace", engine).unwrap();
        router.add_home(1, "cace", Lag::Unbounded).unwrap();
        router.add_home(2, "cace", Lag::Unbounded).unwrap();

        // Violate the invariant the old code `.expect`ed on: live homes
        // above the cap with an empty LRU queue. The shard must repair
        // itself — park the stalest live home — not panic.
        router.shards[0].lru.clear();
        router.shards[0].enforce_cap(1, false);
        assert_eq!(router.home_status(1), Some(HomeStatus::Parked));
        assert_eq!(router.home_status(2), Some(HomeStatus::Live));
        assert_eq!(router.stats().lru_repairs(), 1);

        // Both homes keep serving afterwards (1 via rehydration).
        let tick = &test[0].ticks[0].observed;
        let round = router.push_round(&[(1, tick), (2, tick)]).unwrap();
        assert!(matches!(round[0], HomeRound::Advanced(_)));
        assert!(matches!(round[1], HomeRound::Advanced(_)));

        // Nothing live at all + empty queue: a no-op, not a loop or panic.
        router.park_home(1).unwrap();
        router.park_home(2).unwrap();
        router.shards[0].lru.clear();
        router.shards[0].enforce_cap(0, false);
        assert_eq!(router.stats().lru_repairs(), 1);
    }

    #[test]
    fn hot_swap_to_published_twin_is_bit_identical() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        // An independently trained engine over the same corpus: distinct
        // allocation, identical parameters — the full swap machinery runs
        // without moving a single decision.
        let twin = arc_engine(&train);
        let lag = Lag::Fixed(4);
        let n_homes = 6u64;

        // No live cap: every home stays live, so the publish exercises
        // the *live* swap path (capped parked homes with an identical
        // fingerprint would rehydrate without a migration instead).
        let mut swapped = ShardedRouter::with_shards(2);
        let mut control = ShardedRouter::with_shards(2);
        for router in [&mut swapped, &mut control] {
            router.register_model("cace", Arc::clone(&engine)).unwrap();
            for id in 0..n_homes {
                router.add_home(id, "cace", lag).unwrap();
            }
        }
        let session = &test[0];
        for (t, tick) in session.ticks.iter().enumerate() {
            if t == 20 {
                let generation = swapped.publish_model("cace", Arc::clone(&twin)).unwrap();
                assert_eq!(generation, 1);
                assert_eq!(swapped.model_generation("cace").unwrap(), 1);
            }
            let round: Vec<(u64, &ObservedTick)> =
                (0..n_homes).map(|id| (id, &tick.observed)).collect();
            let a = swapped.push_round(&round).unwrap();
            let b = control.push_round(&round).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.decision(), y.decision(), "tick {t}");
            }
        }
        // Identical parameters share a fingerprint, so parked homes
        // resume without a migration; every *live* home swapped once.
        assert!(swapped.stats().swaps() > 0);
        assert_eq!(control.stats().swaps(), 0);
        let a = swapped.finish();
        let b = control.finish();
        for ((id_a, rec_a), (id_b, rec_b)) in a.iter().zip(&b) {
            assert_eq!(id_a, id_b);
            let (rec_a, rec_b) = (rec_a.as_ref().unwrap(), rec_b.as_ref().unwrap());
            assert_eq!(rec_a.macros, rec_b.macros);
            assert_eq!(rec_a.states_explored, rec_b.states_explored);
        }
    }

    #[test]
    fn adapt_model_publishes_generations_and_rolls_back() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let mut router = ShardedRouter::with_shards(2);
        router.register_model("cace", Arc::clone(&engine)).unwrap();
        for id in 0..3u64 {
            router.add_home(id, "cace", Lag::Fixed(4)).unwrap();
        }

        // No policy yet: adapt_model is a config error, not a panic.
        assert!(matches!(
            router.adapt_model("cace"),
            Err(ModelError::InvalidConfig(_))
        ));
        let policy = AdaptationPolicy {
            window_ticks: 10,
            min_windows: 2,
            laplace: 0.5,
        };
        router.enable_adaptation("cace", policy).unwrap();
        // Nothing captured yet → below min_windows → no publish.
        assert_eq!(router.adapt_model("cace").unwrap(), None);
        assert_eq!(router.model_generation("cace").unwrap(), 0);

        let session = &test[0];
        for tick in &session.ticks {
            let round: Vec<(u64, &ObservedTick)> = (0..3).map(|id| (id, &tick.observed)).collect();
            router.push_round(&round).unwrap();
        }
        // 60 ticks / 10-tick windows × 3 homes ≫ min_windows.
        let generation = router.adapt_model("cace").unwrap();
        assert_eq!(generation, Some(1));
        assert_eq!(router.model_generation("cace").unwrap(), 1);

        // The next round lazily hot-swaps every live home.
        let before = router.stats().swaps();
        let round: Vec<(u64, &ObservedTick)> =
            (0..3).map(|id| (id, &session.ticks[0].observed)).collect();
        let outcomes = router.push_round(&round).unwrap();
        assert!(outcomes.iter().all(|r| matches!(r, HomeRound::Advanced(_))));
        assert!(router.stats().swaps() > before);

        // Roll back to the as-trained generation; homes swap back too.
        router.rollback_model("cace", 0).unwrap();
        assert_eq!(router.model_generation("cace").unwrap(), 0);
        let before = router.stats().swaps();
        let outcomes = router.push_round(&round).unwrap();
        assert!(outcomes.iter().all(|r| matches!(r, HomeRound::Advanced(_))));
        assert!(router.stats().swaps() > before);
        assert!(matches!(
            router.rollback_model("cace", 9),
            Err(ModelError::InvalidConfig(_))
        ));

        for (_, result) in router.finish() {
            assert!(result.is_ok());
        }
    }

    #[test]
    fn fingerprint_directed_migration_rolls_imported_homes_forward() {
        let (train, test) = corpus();
        let engine_a = arc_engine(&train);
        let other = generate_cace_dataset(
            &cace_grammar(),
            1,
            4,
            &SessionConfig::tiny().with_ticks(60),
            58,
        );
        let (other_train, _) = train_test_split(other, 0.75);
        let engine_b = arc_engine(&other_train);
        assert_ne!(
            engine_a.hdbn_params().fingerprint(),
            engine_b.hdbn_params().fingerprint()
        );
        let session = &test[0];

        // A home checkpointed under model A...
        let mut origin = ShardedRouter::new();
        origin
            .register_model("cace", Arc::clone(&engine_a))
            .unwrap();
        origin.add_home(5, "cace", Lag::Unbounded).unwrap();
        for tick in &session.ticks[..10] {
            origin.push_round(&[(5, &tick.observed)]).unwrap();
        }
        let bytes = origin.export_home(5).unwrap();

        // ...quarantines in a fleet that has never seen A (unknown
        // fingerprint — never a silent wrong-model resume)...
        let mut foreign = ShardedRouter::new();
        foreign
            .register_model("cace", Arc::clone(&engine_b))
            .unwrap();
        foreign.import_home(5, "cace", bytes.clone()).unwrap();
        let round = foreign
            .push_round(&[(5, &session.ticks[10].observed)])
            .unwrap();
        assert!(matches!(
            round[0],
            HomeRound::Failed(ModelError::Persistence { .. })
        ));

        // ...but migrates explicitly in a fleet where A is a *known*
        // generation that B rolled forward from.
        let mut fleet = ShardedRouter::new();
        fleet.register_model("cace", Arc::clone(&engine_a)).unwrap();
        fleet.publish_model("cace", Arc::clone(&engine_b)).unwrap();
        fleet.import_home(5, "cace", bytes).unwrap();
        let round = fleet
            .push_round(&[(5, &session.ticks[10].observed)])
            .unwrap();
        assert!(matches!(round[0], HomeRound::Advanced(_)));
        assert_eq!(fleet.stats().swaps(), 1);
        assert_eq!(fleet.home_status(5), Some(HomeStatus::Live));
    }

    #[test]
    fn model_records_round_trip_between_fleets() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let mut origin = ShardedRouter::new();
        origin.register_model("cace", Arc::clone(&engine)).unwrap();
        let record = origin.export_model("cace", 0).unwrap();
        assert!(record.starts_with("CACE-SNAPSHOT v3 fnv1a64="));
        assert!(matches!(
            origin.export_model("cace", 1),
            Err(ModelError::InvalidConfig(_))
        ));

        // Unknown name → registered fresh as generation 0.
        let mut fresh = ShardedRouter::new();
        assert_eq!(fresh.import_model(&record).unwrap(), 0);
        fresh.add_home(1, "cace", Lag::Unbounded).unwrap();
        let round = fresh
            .push_round(&[(1, &test[0].ticks[0].observed)])
            .unwrap();
        assert!(matches!(round[0], HomeRound::Advanced(_)));

        // Known name → published as the next (current) generation.
        assert_eq!(fresh.import_model(&record).unwrap(), 1);
        assert_eq!(fresh.model_generation("cace").unwrap(), 1);
    }

    #[test]
    fn export_import_hands_a_home_over_bit_identically() {
        let (train, test) = corpus();
        let engine = arc_engine(&train);
        let session = &test[0];
        let lag = Lag::Unbounded;

        let mut origin = ShardedRouter::new();
        origin.register_model("cace", Arc::clone(&engine)).unwrap();
        origin.add_home(99, "cace", lag).unwrap();
        for tick in &session.ticks[..30] {
            origin.push_round(&[(99, &tick.observed)]).unwrap();
        }
        let bytes = origin.export_home(99).unwrap();
        assert_eq!(origin.home_status(99), Some(HomeStatus::Parked));

        let mut target = ShardedRouter::new();
        target.register_model("cace", Arc::clone(&engine)).unwrap();
        target.import_home(99, "cace", bytes).unwrap();
        for tick in &session.ticks[30..] {
            target.push_round(&[(99, &tick.observed)]).unwrap();
        }
        let finished = target.finish();
        let batch = engine.recognize(session).unwrap();
        let rec = finished[0].1.as_ref().unwrap();
        assert_eq!(rec.macros, batch.macros);
        assert_eq!(rec.states_explored, batch.states_explored);
        assert_eq!(rec.transition_ops, batch.transition_ops);
    }
}
