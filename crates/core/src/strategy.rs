//! The four pruning strategies of §VII-G.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which combination of miners and coupling the engine runs with (Fig 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Strategy {
    /// **NH** — Naive-HMM: exhaustive flat HMM per user over the unpruned
    /// (macro × micro-beam) product state space, with the macro label
    /// classified directly from frame features (no hierarchy, no miners).
    NaiveHmm,
    /// **NCR** — Naive-Correlation: per-user rule pruning (rules whose items
    /// all belong to one user, as in ACE \[1\]) over per-user hierarchical
    /// chains; no inter-user coupling.
    NaiveCorrelation,
    /// **NCS** — Naive-Constraint: the coupled HDBN with the constraint
    /// miner's augmentations but *no* correlation pruning (the full coupled
    /// state space).
    NaiveConstraint,
    /// **C2** — Correlation-Constraint: the full loosely-coupled HDBN with
    /// both miners. The paper's proposed configuration.
    #[default]
    CorrelationConstraint,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::NaiveHmm,
        Strategy::NaiveCorrelation,
        Strategy::NaiveConstraint,
        Strategy::CorrelationConstraint,
    ];

    /// Whether the correlation miner prunes the state space.
    pub const fn uses_correlation_pruning(self) -> bool {
        matches!(
            self,
            Strategy::NaiveCorrelation | Strategy::CorrelationConstraint
        )
    }

    /// Whether rules are restricted to single-user scope (NCR).
    pub const fn per_user_rules_only(self) -> bool {
        matches!(self, Strategy::NaiveCorrelation)
    }

    /// Whether the two chains are coupled at decode time.
    pub const fn coupled(self) -> bool {
        matches!(
            self,
            Strategy::NaiveConstraint | Strategy::CorrelationConstraint
        )
    }

    /// Whether the hierarchical (constraint-miner) structure is used at all.
    pub const fn hierarchical(self) -> bool {
        !matches!(self, Strategy::NaiveHmm)
    }

    /// Upper bound on the decoder-frontier size this strategy carries per
    /// tick, given the engine's per-user macro count and micro-candidate
    /// caps (`beam` for the structured strategies, `nh_beam` for NH).
    ///
    /// This is the frontier a [`cace_hdbn::Beam::TopK`] width is measured
    /// against: `TopK(k)` with `k` at or above this bound never prunes.
    /// The coupled strategies (NCS, C2) decode one *joint* frontier — the
    /// product of both users' chains — while NH and NCR decode two
    /// independent per-user frontiers, so the bound is per decoded
    /// frontier, not per home.
    pub const fn frontier_bound(self, n_macro: usize, beam: usize, nh_beam: usize) -> usize {
        match self {
            Strategy::NaiveHmm => n_macro * nh_beam,
            Strategy::NaiveCorrelation => n_macro * beam,
            Strategy::NaiveConstraint | Strategy::CorrelationConstraint => {
                (n_macro * beam) * (n_macro * beam)
            }
        }
    }

    /// The paper's abbreviation.
    pub const fn label(self) -> &'static str {
        match self {
            Strategy::NaiveHmm => "NH",
            Strategy::NaiveCorrelation => "NCR",
            Strategy::NaiveConstraint => "NCS",
            Strategy::CorrelationConstraint => "C2",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_matrix_matches_paper() {
        use Strategy::*;
        assert!(!NaiveHmm.uses_correlation_pruning());
        assert!(!NaiveHmm.coupled());
        assert!(!NaiveHmm.hierarchical());

        assert!(NaiveCorrelation.uses_correlation_pruning());
        assert!(NaiveCorrelation.per_user_rules_only());
        assert!(!NaiveCorrelation.coupled());

        assert!(!NaiveConstraint.uses_correlation_pruning());
        assert!(NaiveConstraint.coupled());

        assert!(CorrelationConstraint.uses_correlation_pruning());
        assert!(CorrelationConstraint.coupled());
        assert!(!CorrelationConstraint.per_user_rules_only());
    }

    #[test]
    fn frontier_bounds_match_decoder_shapes() {
        use Strategy::*;
        // CACE defaults: 11 macros, beam 8, NH beam 64.
        assert_eq!(NaiveHmm.frontier_bound(11, 8, 64), 11 * 64);
        assert_eq!(NaiveCorrelation.frontier_bound(11, 8, 64), 88);
        assert_eq!(NaiveConstraint.frontier_bound(11, 8, 64), 88 * 88);
        assert_eq!(CorrelationConstraint.frontier_bound(11, 8, 64), 88 * 88);
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(Strategy::default(), Strategy::CorrelationConstraint);
        let labels: Vec<&str> = Strategy::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["NH", "NCR", "NCS", "C2"]);
        assert_eq!(Strategy::NaiveConstraint.to_string(), "NCS");
    }
}
