//! Streaming (run-time) recognition: consume sensor ticks as they arrive.
//!
//! [`CaceEngine::recognize`] needs the complete session upfront; a deployed
//! smart home produces one [`ObservedTick`] per second. A
//! [`StreamingRecognizer`] closes that gap: each
//! [`push`](StreamingRecognizer::push) extracts the tick's wearable
//! features, runs the *same* per-tick preparation pipeline as the batch
//! path ([`TickPreparer`](crate::statespace::TickPreparer)), and advances
//! an online fixed-lag Viterbi frontier ([`cace_hdbn::online`]) by one DP
//! step — constant decoding work per tick, a backpointer window bounded at
//! `lag + 2` ticks, no re-decoding of the growing prefix. (The emitted
//! decision history does accumulate, one decision per tick, so that
//! [`finish`](StreamingRecognizer::finish) can return the session-level
//! [`Recognition`].)
//!
//! The smoothing [`Lag`] trades latency for accuracy: `Lag::Fixed(0)` is
//! greedy filtering, larger lags converge on the batch answer, and
//! [`Lag::Unbounded`] (or any lag at least the stream length) makes
//! [`finish`](StreamingRecognizer::finish) **bit-identical** to
//! [`CaceEngine::recognize`] — same macros, same `states_explored`, same
//! `transition_ops`, same `rules_fired`, same `mean_joint_size` — for every
//! strategy (NH, NCR, NCS, C2). `tests/streaming_equivalence.rs` asserts
//! this.
//!
//! A live stream can also be **parked**: [`StreamingRecognizer::park`]
//! captures the trellis frontier, backpointer window, decision cursor and
//! overhead counters into a serializable [`ParkedStream`], and
//! [`CaceEngine::resume`] (or [`resume_shared`]) rehydrates it mid-stream
//! with a **bit-identical** continuation — same decisions, same overhead
//! accounting, same [`finish`](StreamingRecognizer::finish) result — for
//! every strategy, beam, and precision lane. Resume is panic-free: a
//! tampered or mismatched checkpoint is rejected with
//! [`ModelError::Persistence`]. The sharded serving tier
//! ([`crate::router`]) is built on exactly this park/rehydrate cycle.
//!
//! Park/resume also powers **online adaptation**: a checkpoint records the
//! fingerprint of the model it was taken under, resume refuses a
//! different model unless the checkpoint is explicitly re-targeted
//! ([`ParkedStream::migrated_to`]), and
//! [`StreamingRecognizer::swap_model`] composes park → migrate → resume
//! into an atomic in-place hot swap at a decision boundary. Opt-in drift
//! capture ([`StreamingRecognizer::capture_drift`]) buffers decoded tick
//! inputs into windows for the incremental EM loop
//! ([`cace_hdbn::DriftAccumulator`]).
//!
//! [`StreamRouter`] multiplexes many concurrent homes over rayon: one
//! recognizer per home, one parallel fan-out per arriving round of ticks.
//!
//! ```no_run
//! use cace_behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
//! use cace_core::{CaceConfig, CaceEngine, Lag};
//!
//! let sessions = generate_cace_dataset(&cace_grammar(), 1, 3, &SessionConfig::tiny(), 7);
//! let engine = CaceEngine::train(&sessions[..2], &CaceConfig::default()).unwrap();
//! let mut stream = engine.stream(Lag::Fixed(5));
//! for tick in &sessions[2].ticks {
//!     if let Some(decision) = stream.push(&tick.observed).unwrap() {
//!         println!("tick {}: users doing {:?}", decision.tick, decision.macros);
//!     }
//! }
//! let recognition = stream.finish().unwrap(); // full session decode
//! # let _ = recognition;
//! ```

use std::ops::Deref;
use std::sync::Arc;
use std::time::Instant;

use cace_behavior::{ObservedTick, Session};
use cace_features::extract_tick;
use cace_hdbn::{
    BatchedTrellis, CoupledHdbn, DecoderConfig, Lag, OnlineCoupledViterbi, OnlineSingleViterbi,
    ParkedChain, ParkedCoupled, SingleHdbn, SmoothedChain, TickInput,
};
use cace_model::ModelError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::engine::{CaceEngine, Recognition};
use crate::evidence::PrevState;
use crate::nh::{self, OnlineFlat, ParkedFlat};
use crate::strategy::Strategy;

fn park_err(what: impl Into<String>) -> ModelError {
    ModelError::Persistence { what: what.into() }
}

/// A smoothed per-tick decision emitted mid-stream (fixed lag only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamDecision {
    /// The tick index this decision is for (`ticks pushed - 1 - lag`).
    pub tick: usize,
    /// Decoded macro activity per user.
    pub macros: [usize; 2],
}

/// The per-strategy online decoder state.
// One value per stream, so the size spread between the arena-backed
// hierarchical decoders and the flat NH frontier costs nothing per tick.
#[allow(clippy::large_enum_variant)]
enum Decoder {
    /// NH: one flat product frontier per user.
    Nh([OnlineFlat; 2]),
    /// NCR: one hierarchical chain frontier per user.
    Single([OnlineSingleViterbi; 2]),
    /// NCS / C2: the coupled joint frontier.
    Coupled(OnlineCoupledViterbi),
}

/// How a stream holds its engine: borrowed for the single-owner case,
/// [`Arc`]-shared for the serving tier, where a rehydrated stream must not
/// borrow from any particular caller frame.
enum EngineRef<'a> {
    Borrowed(&'a CaceEngine),
    Shared(Arc<CaceEngine>),
}

impl Deref for EngineRef<'_> {
    type Target = CaceEngine;
    fn deref(&self) -> &CaceEngine {
        match self {
            EngineRef::Borrowed(e) => e,
            EngineRef::Shared(e) => e,
        }
    }
}

impl<'a> EngineRef<'a> {
    /// A second handle to the same engine (reference copy or `Arc` clone),
    /// independent of the borrow it was taken through — lets the cohort
    /// path hold the shared engine while mutating the member streams.
    fn clone_ref(&self) -> EngineRef<'a> {
        match self {
            EngineRef::Borrowed(e) => EngineRef::Borrowed(e),
            EngineRef::Shared(e) => EngineRef::Shared(Arc::clone(e)),
        }
    }
}

/// Opt-in side buffer for online adaptation: the prepared tick inputs of
/// a live stream, collected into fixed-size windows that a
/// [`DriftAccumulator`](cace_hdbn::DriftAccumulator) later folds into
/// expected counts. Strictly observational — capturing never changes a
/// decision, a counter, or the decode path's allocation profile when
/// disabled (the default).
struct DriftBuffer {
    window_ticks: usize,
    pending: Vec<TickInput>,
    completed: Vec<Vec<TickInput>>,
}

/// Incremental recognition over one home's tick stream.
///
/// Create with [`CaceEngine::stream`] (or [`stream_shared`] for a
/// `'static` stream over an [`Arc`]-held engine); see the
/// [module docs](self) for the equivalence guarantees and an example.
pub struct StreamingRecognizer<'a> {
    engine: EngineRef<'a>,
    lag: Lag,
    decoder: Decoder,
    prev: [PrevState; 2],
    pushed: usize,
    /// Drift-capture buffer; `None` (the default) costs nothing per push.
    drift: Option<Box<DriftBuffer>>,
    /// Running Σ per-tick joint sizes (as f64, in push order — the same
    /// accumulation `recognize` performs over its collected vector).
    joint_size_sum: f64,
    rules_fired: u64,
    /// √joint-states of the previous tick (NCR transition accounting).
    ncr_prev_sqrt: u64,
    ncr_ops: u64,
    wall_seconds: f64,
    /// Fault injection: fail the push of this tick index. The mining
    /// layer's never-empty-a-dimension guards make an organic decode
    /// failure unreachable from a well-formed engine, so the router's
    /// failure containment is exercised through this hook.
    #[cfg(test)]
    poison_tick: Option<usize>,
}

/// Builds the per-strategy decoder state for a fresh stream.
fn fresh_decoder(engine: &CaceEngine, lag: Lag) -> Decoder {
    match engine.config.strategy {
        Strategy::NaiveHmm => Decoder::Nh([
            OnlineFlat::new(lag, engine.config.decoder),
            OnlineFlat::new(lag, engine.config.decoder),
        ]),
        Strategy::NaiveCorrelation => {
            let model = SingleHdbn::from_shared(Arc::clone(&engine.params))
                .with_decoder(engine.config.decoder);
            Decoder::Single([
                OnlineSingleViterbi::new(model.clone(), 0, lag),
                OnlineSingleViterbi::new(model, 1, lag),
            ])
        }
        Strategy::NaiveConstraint | Strategy::CorrelationConstraint => {
            let model = CoupledHdbn::from_shared(Arc::clone(&engine.params))
                .with_decoder(engine.config.decoder);
            Decoder::Coupled(OnlineCoupledViterbi::new(model, lag))
        }
    }
}

fn fresh_stream(engine: EngineRef<'_>, lag: Lag) -> StreamingRecognizer<'_> {
    let decoder = fresh_decoder(&engine, lag);
    StreamingRecognizer {
        engine,
        lag,
        decoder,
        prev: [PrevState::default(), PrevState::default()],
        pushed: 0,
        drift: None,
        joint_size_sum: 0.0,
        rules_fired: 0,
        ncr_prev_sqrt: 0,
        ncr_ops: 0,
        wall_seconds: 0.0,
        #[cfg(test)]
        poison_tick: None,
    }
}

/// Rehydrates a parked stream against `engine`, validating everything the
/// resumed decoder would read before touching any frontier.
fn resume_impl<'a>(
    engine: EngineRef<'a>,
    parked: &ParkedStream,
) -> Result<StreamingRecognizer<'a>, ModelError> {
    let e: &CaceEngine = &engine;
    if parked.strategy != e.config.strategy {
        return Err(park_err(format!(
            "parked stream was recorded under strategy {:?}, engine runs {:?}",
            parked.strategy, e.config.strategy
        )));
    }
    if parked.decoder != e.config.decoder {
        return Err(park_err(
            "parked stream decoder config does not match the engine's",
        ));
    }
    // Model identity gate: a checkpoint silently resumed under different
    // parameters would continue with a *valid-looking but wrong* frontier
    // (every structural check below could still pass). Version moves are
    // legal only through the explicit [`ParkedStream::migrated_to`]
    // hand-off, which is how the hot-swap layer states its intent.
    if parked.model_fp != e.params.fingerprint() {
        return Err(park_err(format!(
            "parked stream was checkpointed under model {:016x}, engine serves {:016x}; \
             resume it under the original model or migrate explicitly \
             (ParkedStream::migrated_to)",
            parked.model_fp,
            e.params.fingerprint()
        )));
    }
    for (u, p) in parked.prev.iter().enumerate() {
        if p.macro_id.is_some_and(|m| m >= e.space.n_macro) {
            return Err(park_err(format!(
                "parked stream: user {u} lag-1 macro out of range"
            )));
        }
        if p.location.is_some_and(|l| l >= e.space.n_location) {
            return Err(park_err(format!(
                "parked stream: user {u} lag-1 location out of range"
            )));
        }
    }
    let counter_ok = |x: f64| x.is_finite() && x >= 0.0;
    if !counter_ok(parked.joint_size_sum) || !counter_ok(parked.wall_seconds) {
        return Err(park_err(
            "parked stream: non-finite or negative overhead accounting",
        ));
    }
    let cursor_err = || park_err("parked stream: decoder tick count disagrees with the cursor");
    let decoder = match (&parked.state, e.config.strategy) {
        (ParkedDecoder::Nh(flats), Strategy::NaiveHmm) => {
            if flats.iter().any(|f| f.ticks_pushed() != parked.pushed) {
                return Err(cursor_err());
            }
            Decoder::Nh([
                OnlineFlat::resume(&e.nh_log_trans, parked.lag, e.config.decoder, &flats[0])?,
                OnlineFlat::resume(&e.nh_log_trans, parked.lag, e.config.decoder, &flats[1])?,
            ])
        }
        (ParkedDecoder::Single(chains), Strategy::NaiveCorrelation) => {
            if chains.iter().any(|c| c.ticks_pushed() != parked.pushed) {
                return Err(cursor_err());
            }
            let model =
                SingleHdbn::from_shared(Arc::clone(&e.params)).with_decoder(e.config.decoder);
            Decoder::Single([
                OnlineSingleViterbi::resume(model.clone(), 0, parked.lag, &chains[0])?,
                OnlineSingleViterbi::resume(model, 1, parked.lag, &chains[1])?,
            ])
        }
        (
            ParkedDecoder::Coupled(coupled),
            Strategy::NaiveConstraint | Strategy::CorrelationConstraint,
        ) => {
            if coupled.ticks_pushed() != parked.pushed {
                return Err(cursor_err());
            }
            let model =
                CoupledHdbn::from_shared(Arc::clone(&e.params)).with_decoder(e.config.decoder);
            Decoder::Coupled(OnlineCoupledViterbi::resume(model, parked.lag, coupled)?)
        }
        _ => {
            return Err(park_err(
                "parked stream: decoder state does not match the recorded strategy",
            ))
        }
    };
    Ok(StreamingRecognizer {
        engine,
        lag: parked.lag,
        decoder,
        prev: parked.prev,
        pushed: parked.pushed,
        drift: None,
        joint_size_sum: parked.joint_size_sum,
        rules_fired: parked.rules_fired,
        ncr_prev_sqrt: parked.ncr_prev_sqrt,
        ncr_ops: parked.ncr_ops,
        wall_seconds: parked.wall_seconds,
        #[cfg(test)]
        poison_tick: None,
    })
}

impl CaceEngine {
    /// Opens a streaming recognizer against this trained engine.
    ///
    /// Many recognizers may stream concurrently against one engine: the
    /// engine is only read, and the HDBN parameters are `Arc`-shared into
    /// each decoder frontier.
    pub fn stream(&self, lag: Lag) -> StreamingRecognizer<'_> {
        fresh_stream(EngineRef::Borrowed(self), lag)
    }

    /// Rehydrates a [`ParkedStream`] into a live recognizer that continues
    /// **bit-identically** to the stream that was parked: the same
    /// decisions, the same overhead accounting, the same
    /// [`finish`](StreamingRecognizer::finish) result.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] when the parked state was recorded
    /// under a different strategy or decoder config, or is structurally
    /// inconsistent (tampered) — resume never panics on bad bytes.
    pub fn resume(&self, parked: &ParkedStream) -> Result<StreamingRecognizer<'_>, ModelError> {
        resume_impl(EngineRef::Borrowed(self), parked)
    }
}

/// Opens a stream that shares ownership of an [`Arc`]-held engine, so the
/// recognizer is `'static` and can live inside long-running serving state
/// (the sharded router) without borrowing from any caller frame.
pub fn stream_shared(engine: &Arc<CaceEngine>, lag: Lag) -> StreamingRecognizer<'static> {
    fresh_stream(EngineRef::Shared(Arc::clone(engine)), lag)
}

/// [`CaceEngine::resume`] over an [`Arc`]-shared engine — the `'static`
/// counterpart used by the serving tier to rehydrate parked homes.
///
/// # Errors
/// Exactly those of [`CaceEngine::resume`].
pub fn resume_shared(
    engine: &Arc<CaceEngine>,
    parked: &ParkedStream,
) -> Result<StreamingRecognizer<'static>, ModelError> {
    resume_impl(EngineRef::Shared(Arc::clone(engine)), parked)
}

impl StreamingRecognizer<'_> {
    /// The smoothing lag this stream was opened with.
    pub fn lag(&self) -> Lag {
        self.lag
    }

    /// Ticks consumed so far.
    pub fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// Consumes one observed tick; returns the newly ripened fixed-lag
    /// decision, if any.
    ///
    /// # Errors
    /// Propagates an emptied per-tick state space
    /// ([`ModelError::EmptyStateSpace`]).
    pub fn push(&mut self, observed: &ObservedTick) -> Result<Option<StreamDecision>, ModelError> {
        #[cfg(test)]
        if self.poison_tick == Some(self.pushed) {
            return Err(ModelError::EmptyStateSpace { tick: self.pushed });
        }
        let start = Instant::now();
        let features = extract_tick(observed);
        // Borrow the engine through the field so the decoder and cursor
        // fields stay independently borrowable (`advance_decoder` is a
        // free function for the same reason).
        let engine: &CaceEngine = &self.engine;
        let preparer = engine.runtime_preparer();
        let prepared = preparer.prepare(observed, &features, &mut self.prev);
        self.rules_fired += prepared.rules_fired;

        let strategy = engine.config.strategy;
        let n_macro = engine.n_macro;
        // Per-tick joint-size accounting, matching the batch path's choice
        // of metric per strategy.
        if strategy.uses_correlation_pruning() {
            self.joint_size_sum += prepared.joint_size as f64;
        } else {
            self.joint_size_sum += (prepared.input.joint_states(n_macro) as u128) as f64;
        }
        if strategy == Strategy::NaiveCorrelation {
            let sqrt = (prepared.input.joint_states(n_macro) as f64).sqrt() as u64;
            if self.pushed > 0 {
                self.ncr_ops += self.ncr_prev_sqrt * sqrt;
            }
            self.ncr_prev_sqrt = sqrt;
        }

        let decision = advance_decoder(
            &mut self.decoder,
            engine,
            &prepared.input,
            &features,
            &preparer,
        )?;
        // Drift capture happens only after the tick decoded cleanly: a
        // failing tick quarantines the home anyway, and feeding its inputs
        // to the adaptation loop would train on data nothing served.
        if let Some(buf) = self.drift.as_deref_mut() {
            buf.pending.push(prepared.input.clone());
            if buf.pending.len() >= buf.window_ticks {
                let window =
                    std::mem::replace(&mut buf.pending, Vec::with_capacity(buf.window_ticks));
                buf.completed.push(window);
            }
        }
        self.pushed += 1;
        self.wall_seconds += start.elapsed().as_secs_f64();
        Ok(decision)
    }

    /// Enables drift capture: from now on every cleanly decoded tick's
    /// prepared input is buffered, and each `window_ticks` consecutive
    /// ticks close one window for
    /// [`take_drift_windows`](Self::take_drift_windows). Purely
    /// observational — decisions, counters, and park/resume state are
    /// unchanged (captured windows are *not* parked; adaptation data is
    /// best-effort by design).
    pub fn capture_drift(&mut self, window_ticks: usize) {
        self.drift = Some(Box::new(DriftBuffer {
            window_ticks: window_ticks.max(1),
            pending: Vec::new(),
            completed: Vec::new(),
        }));
    }

    /// Whether drift capture is enabled on this stream.
    pub fn drift_capture_enabled(&self) -> bool {
        self.drift.is_some()
    }

    /// Drains the completed drift windows collected so far (the partial
    /// trailing window stays pending). Empty when capture is disabled.
    pub fn take_drift_windows(&mut self) -> Vec<Vec<TickInput>> {
        self.drift
            .as_deref_mut()
            .map(|b| std::mem::take(&mut b.completed))
            .unwrap_or_default()
    }

    /// Hot-swaps this live stream onto `engine` at the current decision
    /// boundary (between two pushes), in place.
    ///
    /// The handoff guarantee, by construction: the swap is exactly
    /// [`park`](Self::park) → explicit fingerprint migration
    /// ([`ParkedStream::migrated_to`]) → resume under `engine`. Every
    /// decision already emitted is untouched (pre-swap output is
    /// bit-identical to a stream that never swapped), and the
    /// continuation equals a fresh stream resumed from this exact parked
    /// frontier under the new model — `tests/adaptation.rs` proptests
    /// both halves. Swapping onto an engine with identical parameters is
    /// a bit-identical no-op end to end.
    ///
    /// The swap is atomic: on error (strategy/decoder-config mismatch,
    /// incompatible dimensions) the stream is left exactly as it was.
    /// Drift-capture state carries across the swap, pending windows
    /// included.
    ///
    /// # Errors
    /// Those of [`CaceEngine::resume`], minus the fingerprint gate (the
    /// migration is explicit here).
    pub fn swap_model(&mut self, engine: &Arc<CaceEngine>) -> Result<(), ModelError> {
        let parked = self.park().migrated_to(engine);
        let mut resumed = resume_impl(EngineRef::Shared(Arc::clone(engine)), &parked)?;
        resumed.drift = self.drift.take();
        *self = resumed;
        Ok(())
    }

    /// Captures this stream's complete mid-stream state — trellis
    /// frontier, backpointer window, decision cursor, overhead counters —
    /// as a serializable checkpoint. The live stream is untouched;
    /// [`CaceEngine::resume`] / [`resume_shared`] continue from the
    /// checkpoint bit-identically.
    pub fn park(&self) -> ParkedStream {
        let engine: &CaceEngine = &self.engine;
        let state = match &self.decoder {
            Decoder::Nh(flats) => ParkedDecoder::Nh([flats[0].park(), flats[1].park()]),
            Decoder::Single(chains) => ParkedDecoder::Single([chains[0].park(), chains[1].park()]),
            Decoder::Coupled(online) => ParkedDecoder::Coupled(online.park()),
        };
        ParkedStream {
            strategy: engine.config.strategy,
            decoder: engine.config.decoder,
            lag: self.lag,
            state,
            prev: self.prev,
            pushed: self.pushed,
            joint_size_sum: self.joint_size_sum,
            rules_fired: self.rules_fired,
            ncr_prev_sqrt: self.ncr_prev_sqrt,
            ncr_ops: self.ncr_ops,
            wall_seconds: self.wall_seconds,
            model_fp: engine.params.fingerprint(),
        }
    }

    /// Ends the stream: resolves every not-yet-committed tick and returns
    /// the session-level [`Recognition`].
    ///
    /// With `lag >=` the stream length (or [`Lag::Unbounded`]) the result
    /// is bit-identical to [`CaceEngine::recognize`] on the same ticks,
    /// except `wall_seconds`, which reports the accumulated streaming time.
    ///
    /// # Errors
    /// [`ModelError::InsufficientData`] if no tick was ever pushed.
    pub fn finish(self) -> Result<Recognition, ModelError> {
        let start = Instant::now();
        let pushed = self.pushed;
        let never_prunes = self
            .engine
            .config
            .decoder
            .beam
            .never_prunes(self.engine.frontier_bound());
        let (macros, states_explored, transition_ops) = match self.decoder {
            Decoder::Coupled(online) => {
                let path = online.finalize()?;
                (path.macros, path.states_explored, path.transition_ops)
            }
            Decoder::Single(chains) => {
                let [c0, c1] = chains;
                let p0 = c0.finalize()?;
                let p1 = c1.finalize()?;
                // Mirror the batch path's choice: the |S|²-per-tick
                // input-size convention (charged once per user) for a
                // decoder that can never prune, the decoders' own counts
                // under a live beam.
                let ops = if never_prunes {
                    2 * self.ncr_ops
                } else {
                    p0.transition_ops + p1.transition_ops
                };
                (
                    [p0.macros, p1.macros],
                    p0.states_explored + p1.states_explored,
                    ops,
                )
            }
            Decoder::Nh(flats) => {
                let [f0, f1] = flats;
                let err = || ModelError::InsufficientData {
                    what: "NH decoding".into(),
                    available: 0,
                    required: 1,
                };
                let (m0, s0, o0) = f0.finalize().ok_or_else(err)?;
                let (m1, s1, o1) = f1.finalize().ok_or_else(err)?;
                ([m0, m1], s0 + s1, o0 + o1)
            }
        };
        let mean_joint_size = if pushed == 0 {
            0.0
        } else {
            self.joint_size_sum / pushed as f64
        };
        Ok(Recognition {
            macros,
            states_explored,
            transition_ops,
            wall_seconds: self.wall_seconds + start.elapsed().as_secs_f64(),
            mean_joint_size,
            rules_fired: self.rules_fired,
        })
    }
}

/// One DP step of whichever decoder the stream runs. A free function (not
/// a method) so `push` can borrow the engine and the decoder as disjoint
/// fields.
fn advance_decoder(
    decoder: &mut Decoder,
    engine: &CaceEngine,
    input: &TickInput,
    features: &[cace_features::TickFeatures; 2],
    preparer: &crate::statespace::TickPreparer<'_>,
) -> Result<Option<StreamDecision>, ModelError> {
    match decoder {
        Decoder::Coupled(online) => Ok(online.push(input)?.map(|d| StreamDecision {
            tick: d.tick,
            macros: d.macros,
        })),
        Decoder::Single(chains) => {
            let d0 = chains[0].push(input)?;
            let d1 = chains[1].push(input)?;
            Ok(d0.zip(d1).map(|(a, b)| {
                debug_assert_eq!(a.tick, b.tick);
                StreamDecision {
                    tick: a.tick,
                    macros: [a.macro_id, b.macro_id],
                }
            }))
        }
        Decoder::Nh(flats) => {
            let macro_lp = preparer.nh_macro_emissions(features);
            let n_macro = engine.n_macro;
            let mut out = [None, None];
            for u in 0..2 {
                let states = nh::states(input, u, n_macro);
                let emit = nh::emissions(input, u, &states, &macro_lp[u]);
                out[u] = flats[u].push(&engine.nh_log_trans, states, emit);
            }
            Ok(out[0]
                .zip(out[1])
                .map(|((tick, m0), (_, m1))| StreamDecision {
                    tick,
                    macros: [m0, m1],
                }))
        }
    }
}

/// Whether this home must take its own scalar [`StreamingRecognizer::push`]
/// this round (the fault-injection hook only exists under test).
fn takes_scalar_path(h: &StreamingRecognizer<'_>) -> bool {
    #[cfg(test)]
    return h.poison_tick == Some(h.pushed);
    #[cfg(not(test))]
    {
        let _ = h;
        false
    }
}

/// Per-home results of one [`push_cohort`] call.
#[derive(Debug)]
pub struct CohortOutcome {
    /// One push result per home, aligned with the input slice.
    pub results: Vec<Result<Option<StreamDecision>, ModelError>>,
    /// Homes advanced through the fused batched kernel this call.
    pub batched: usize,
    /// Homes advanced through the per-home scalar path this call.
    pub fallback: usize,
}

/// Advances a cohort of co-resident streams through one *shared* observed
/// tick, running the per-tick preparation pipeline (feature extraction,
/// classifier scoring, rule pruning, candidate beaming) **once** for the
/// whole cohort and fusing the trellis step of every eligible stream into
/// one batched kernel pass ([`cace_hdbn::BatchedTrellis`]).
///
/// Decisions, overhead accounting, park/resume state, and
/// [`finish`](StreamingRecognizer::finish) results are **bit-identical**
/// to pushing each stream individually — only `wall_seconds` (wall-clock,
/// never part of the equivalence contract) differs.
///
/// Cohort formation rules — a home shares the fused pass only when it
/// matches the first (non-diverted) home on all of:
/// - the same engine (same `&CaceEngine` / `Arc`, hence same model
///   parameters, strategy, and decoder config),
/// - the same smoothing lag,
/// - the same lag-1 evidence state (so one `prepare` serves all).
///
/// Everything else falls back to the scalar per-home push, as does a
/// cohort the decoder kernels refuse (a stream before its first tick, an
/// actively-pruning beam, previous frontiers whose candidate shapes
/// diverged) — those still reuse the shared prepared tick. The outcome
/// reports how many homes went through the fused kernel (`batched`) vs
/// the scalar path (`fallback`).
pub fn push_cohort<'e>(
    homes: &mut [&mut StreamingRecognizer<'e>],
    observed: &ObservedTick,
) -> CohortOutcome {
    let n = homes.len();
    let mut results: Vec<Option<Result<Option<StreamDecision>, ModelError>>> = vec![None; n];
    let mut batched = 0usize;
    let mut fallback = 0usize;

    // Anchor the cohort on the first home that can share at all.
    let anchor = homes.iter().position(|h| !takes_scalar_path(h));
    let (engine_ref, lag, prev0) = match anchor {
        Some(i) => (homes[i].engine.clone_ref(), homes[i].lag, homes[i].prev),
        None => {
            let results = homes.iter_mut().map(|h| h.push(observed)).collect();
            return CohortOutcome {
                results,
                batched: 0,
                fallback: n,
            };
        }
    };
    let engine: &CaceEngine = &engine_ref;
    let mask: Vec<bool> = homes
        .iter()
        .map(|h| {
            !takes_scalar_path(h)
                && std::ptr::eq::<CaceEngine>(&*h.engine, engine)
                && h.lag == lag
                && h.prev == prev0
        })
        .collect();
    let n_eligible = mask.iter().filter(|&&m| m).count();
    if n_eligible < 2 {
        let results = homes.iter_mut().map(|h| h.push(observed)).collect();
        return CohortOutcome {
            results,
            batched: 0,
            fallback: n,
        };
    }
    // Homes outside the cohort take their own full scalar push.
    for (i, h) in homes.iter_mut().enumerate() {
        if !mask[i] {
            results[i] = Some(h.push(observed));
            fallback += 1;
        }
    }

    // Shared preparation: one feature extraction, one prepare, for the
    // whole cohort (identical per home by construction — `prepare` is
    // pure in (engine, tick, lag-1 evidence)).
    let start = Instant::now();
    let features = extract_tick(observed);
    let preparer = engine.runtime_preparer();
    let mut prev = prev0;
    let prepared = preparer.prepare(observed, &features, &mut prev);
    let strategy = engine.config.strategy;
    let n_macro = engine.n_macro;

    // Per-home pre-kernel accounting, in exactly the order the scalar push
    // performs it (lag-1 evidence is committed before the decoder
    // advances, so an error mid-decode leaves the same state behind).
    for (i, h) in homes.iter_mut().enumerate() {
        if !mask[i] {
            continue;
        }
        h.rules_fired += prepared.rules_fired;
        if strategy.uses_correlation_pruning() {
            h.joint_size_sum += prepared.joint_size as f64;
        } else {
            h.joint_size_sum += (prepared.input.joint_states(n_macro) as u128) as f64;
        }
        if strategy == Strategy::NaiveCorrelation {
            let sqrt = (prepared.input.joint_states(n_macro) as f64).sqrt() as u64;
            if h.pushed > 0 {
                h.ncr_ops += h.ncr_prev_sqrt * sqrt;
            }
            h.ncr_prev_sqrt = sqrt;
        }
        h.prev = prev;
    }

    // One fused kernel pass per decoder lane; a refused cohort falls back
    // to per-home scalar steps over the already-shared prepared tick.
    let mut bt = BatchedTrellis::new();
    let mut fully_batched = false;
    let cohort_results: Vec<Result<Option<StreamDecision>, ModelError>> = match strategy {
        Strategy::NaiveConstraint | Strategy::CorrelationConstraint => {
            let kernel = {
                let mut cs: Vec<&mut OnlineCoupledViterbi> = homes
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| mask[*i])
                    .map(|(_, h)| match &mut h.decoder {
                        Decoder::Coupled(c) => c,
                        _ => unreachable!("cohort homes share one engine strategy"),
                    })
                    .collect();
                OnlineCoupledViterbi::push_batch(&mut cs, &prepared.input, &mut bt)
            };
            match kernel {
                Ok(Some(ds)) => {
                    fully_batched = true;
                    ds.into_iter()
                        .map(|d| {
                            Ok(d.map(|d| StreamDecision {
                                tick: d.tick,
                                macros: d.macros,
                            }))
                        })
                        .collect()
                }
                Ok(None) => homes
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| mask[*i])
                    .map(|(_, h)| match &mut h.decoder {
                        Decoder::Coupled(c) => {
                            Ok(c.push(&prepared.input)?.map(|d| StreamDecision {
                                tick: d.tick,
                                macros: d.macros,
                            }))
                        }
                        _ => unreachable!("cohort homes share one engine strategy"),
                    })
                    .collect(),
                Err(e) => (0..n_eligible).map(|_| Err(e.clone())).collect(),
            }
        }
        Strategy::NaiveCorrelation => {
            let mut user_batched = [false, false];
            let mut per_user: [Vec<Result<Option<SmoothedChain>, ModelError>>; 2] =
                [Vec::new(), Vec::new()];
            for u in 0..2 {
                if u == 1 && per_user[0].iter().any(|r| r.is_err()) {
                    // The scalar push never advances the second chain
                    // after a first-chain error; mirror it. (Reachable
                    // only through a malformed tick, which fails both
                    // users' validation before any mutation.)
                    break;
                }
                let mut cu: Vec<&mut OnlineSingleViterbi> = homes
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| mask[*i])
                    .map(|(_, h)| match &mut h.decoder {
                        Decoder::Single(cs) => &mut cs[u],
                        _ => unreachable!("cohort homes share one engine strategy"),
                    })
                    .collect();
                per_user[u] =
                    match OnlineSingleViterbi::push_batch(&mut cu, &prepared.input, &mut bt) {
                        Ok(Some(ds)) => {
                            user_batched[u] = true;
                            ds.into_iter().map(Ok).collect()
                        }
                        Ok(None) => cu.iter_mut().map(|c| c.push(&prepared.input)).collect(),
                        Err(e) => (0..n_eligible).map(|_| Err(e.clone())).collect(),
                    };
            }
            fully_batched = user_batched[0] && user_batched[1];
            let [r0, r1] = per_user;
            if r1.is_empty() {
                let e = r0
                    .iter()
                    .find_map(|r| r.as_ref().err().cloned())
                    .expect("user 1 is skipped only on a user-0 error");
                r0.into_iter()
                    .map(|r| match r {
                        Err(err) => Err(err),
                        Ok(_) => Err(e.clone()),
                    })
                    .collect()
            } else {
                r0.into_iter()
                    .zip(r1)
                    .map(|pair| match pair {
                        (Ok(d0), Ok(d1)) => Ok(d0.zip(d1).map(|(a, b)| {
                            debug_assert_eq!(a.tick, b.tick);
                            StreamDecision {
                                tick: a.tick,
                                macros: [a.macro_id, b.macro_id],
                            }
                        })),
                        (Err(e), _) | (_, Err(e)) => Err(e),
                    })
                    .collect()
            }
        }
        Strategy::NaiveHmm => {
            let macro_lp = preparer.nh_macro_emissions(&features);
            let mut user_batched = [false, false];
            let mut per_user: [Vec<Option<(usize, usize)>>; 2] = [Vec::new(), Vec::new()];
            for (u, out) in per_user.iter_mut().enumerate() {
                let states = nh::states(&prepared.input, u, n_macro);
                let emit = nh::emissions(&prepared.input, u, &states, &macro_lp[u]);
                let mut fu: Vec<&mut OnlineFlat> = homes
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, _)| mask[*i])
                    .map(|(_, h)| match &mut h.decoder {
                        Decoder::Nh(fs) => &mut fs[u],
                        _ => unreachable!("cohort homes share one engine strategy"),
                    })
                    .collect();
                *out = match OnlineFlat::push_batch(
                    &mut fu,
                    &engine.nh_log_trans,
                    &states,
                    &emit,
                    &mut bt,
                ) {
                    Some(ds) => {
                        user_batched[u] = true;
                        ds
                    }
                    None => fu
                        .iter_mut()
                        .map(|f| f.push(&engine.nh_log_trans, states.clone(), emit.clone()))
                        .collect(),
                };
            }
            fully_batched = user_batched[0] && user_batched[1];
            let [r0, r1] = per_user;
            r0.into_iter()
                .zip(r1)
                .map(|(a, b)| {
                    Ok(a.zip(b).map(|((tick, m0), (_, m1))| StreamDecision {
                        tick,
                        macros: [m0, m1],
                    }))
                })
                .collect()
        }
    };

    // Per-home commit: drift capture, cursor, wall clock — the same
    // post-decode steps the scalar push performs, in the same order.
    let elapsed = start.elapsed().as_secs_f64();
    let mut it = cohort_results.into_iter();
    for (i, h) in homes.iter_mut().enumerate() {
        if !mask[i] {
            continue;
        }
        let r = it.next().expect("one kernel result per cohort home");
        if fully_batched {
            batched += 1;
        } else {
            fallback += 1;
        }
        match r {
            Ok(decision) => {
                if let Some(buf) = h.drift.as_deref_mut() {
                    buf.pending.push(prepared.input.clone());
                    if buf.pending.len() >= buf.window_ticks {
                        let window = std::mem::replace(
                            &mut buf.pending,
                            Vec::with_capacity(buf.window_ticks),
                        );
                        buf.completed.push(window);
                    }
                }
                h.pushed += 1;
                h.wall_seconds += elapsed;
                results[i] = Some(Ok(decision));
            }
            Err(e) => {
                results[i] = Some(Err(e));
            }
        }
    }
    CohortOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every home is visited exactly once"))
            .collect(),
        batched,
        fallback,
    }
}

/// The parked per-strategy decoder state inside a [`ParkedStream`].
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum ParkedDecoder {
    /// NH: one flat product frontier per user.
    Nh([ParkedFlat; 2]),
    /// NCR: one hierarchical chain frontier per user.
    Single([ParkedChain; 2]),
    /// NCS / C2: the coupled joint frontier.
    Coupled(ParkedCoupled),
}

/// A complete mid-stream checkpoint of one home's [`StreamingRecognizer`]:
/// everything [`CaceEngine::resume`] needs for a bit-identical
/// continuation, and nothing engine-derived (the model itself is
/// re-attached at resume, `Arc`-shared fleet-wide).
///
/// Produced by [`StreamingRecognizer::park`]; serialized through the
/// versioned snapshot layer ([`ParkedStream::to_snapshot_string`]) so
/// parked bytes survive process restarts, and validated structurally on
/// every resume — tampering yields [`ModelError::Persistence`], never a
/// panic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParkedStream {
    pub(crate) strategy: Strategy,
    pub(crate) decoder: DecoderConfig,
    pub(crate) lag: Lag,
    pub(crate) state: ParkedDecoder,
    pub(crate) prev: [PrevState; 2],
    pub(crate) pushed: usize,
    pub(crate) joint_size_sum: f64,
    pub(crate) rules_fired: u64,
    pub(crate) ncr_prev_sqrt: u64,
    pub(crate) ncr_ops: u64,
    pub(crate) wall_seconds: f64,
    pub(crate) model_fp: u64,
}

impl ParkedStream {
    /// Ticks the stream had consumed when it was parked.
    pub fn ticks_pushed(&self) -> usize {
        self.pushed
    }

    /// The strategy the parked stream was recorded under.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The smoothing lag the parked stream was opened with.
    pub fn lag(&self) -> Lag {
        self.lag
    }

    /// Fingerprint of the model parameters the stream was checkpointed
    /// under ([`cace_hdbn::HdbnParams::fingerprint`]). Resume rejects an
    /// engine whose fingerprint differs — cross-model resumes must go
    /// through [`migrated_to`](Self::migrated_to).
    pub fn model_fingerprint(&self) -> u64 {
        self.model_fp
    }

    /// Explicitly re-targets this checkpoint at `engine`'s model: returns
    /// a copy whose model fingerprint matches `engine`, so resuming it
    /// there passes the fingerprint gate. This is the *hot-swap
    /// migration* — the trellis frontier carries over verbatim and all
    /// later ticks score under the new model. Resume still validates
    /// strategy, decoder config, and dimensions; migration only waives
    /// the same-model check.
    pub fn migrated_to(&self, engine: &CaceEngine) -> ParkedStream {
        let mut migrated = self.clone();
        migrated.model_fp = engine.params.fingerprint();
        migrated
    }
}

/// Per-home outcome of one [`StreamRouter::push_round`].
#[derive(Debug, Clone)]
pub enum HomeRound {
    /// The home's stream advanced; a ripened fixed-lag decision may have
    /// been emitted.
    Advanced(Option<StreamDecision>),
    /// The home's tick failed recognition this round. The home is now
    /// quarantined: later rounds skip it, and [`StreamRouter::finish`]
    /// reports this error instead of a [`Recognition`].
    Failed(ModelError),
    /// The home was quarantined by an earlier round; its tick (if any) was
    /// not delivered.
    Quarantined,
}

impl HomeRound {
    /// The decision of an advanced home (`None` for failed/quarantined
    /// homes as well as rounds that ripened nothing).
    pub fn decision(&self) -> Option<StreamDecision> {
        match self {
            HomeRound::Advanced(d) => *d,
            _ => None,
        }
    }
}

/// One home slot inside the router.
struct Home<'a> {
    id: u64,
    stream: StreamingRecognizer<'a>,
    /// The first recognition error this home hit, if any. A faulted home
    /// is quarantined: its stream stops receiving ticks (so the *other*
    /// homes keep serving) and `finish` surfaces the fault.
    fault: Option<ModelError>,
}

/// Multiplexes many concurrent homes' tick streams over rayon.
///
/// Each home owns an independent [`StreamingRecognizer`]; a
/// [`push_round`](Self::push_round) fans the arriving ticks out across all
/// cores while every recognizer aliases the one read-only trained engine.
/// Throughput therefore scales with cores × homes, which is the serving
/// story `examples/streaming_demo.rs` measures.
///
/// Failures are isolated per home: a tick that empties one home's state
/// space quarantines *that* home (reported as [`HomeRound::Failed`], then
/// [`HomeRound::Quarantined`]) while every other home's stream keeps
/// advancing — no home is left desynchronized by a neighbour's bad sensor
/// data, and the serving loop never panics on malformed rounds.
pub struct StreamRouter<'a> {
    homes: Vec<Home<'a>>,
}

impl<'a> StreamRouter<'a> {
    /// An empty router.
    pub fn new() -> Self {
        Self { homes: Vec::new() }
    }

    /// A router serving `n` homes (ids `0..n`) with one recognizer each.
    pub fn with_homes(engine: &'a CaceEngine, n: usize, lag: Lag) -> Self {
        let mut router = Self::new();
        for id in 0..n as u64 {
            router
                .add_home(id, engine.stream(lag))
                .expect("ids 0..n are distinct");
        }
        router
    }

    /// Registers a home's stream. Ids are caller-chosen and reported back
    /// by [`finish`](Self::finish).
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] when `id` is already registered —
    /// silently shadowing a live home would desynchronize its stream.
    pub fn add_home(&mut self, id: u64, stream: StreamingRecognizer<'a>) -> Result<(), ModelError> {
        if self.homes.iter().any(|h| h.id == id) {
            return Err(ModelError::InvalidConfig(format!(
                "router home id {id} is already registered"
            )));
        }
        self.homes.push(Home {
            id,
            stream,
            fault: None,
        });
        Ok(())
    }

    /// Number of homes currently routed (healthy and quarantined).
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether the router has no homes.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Ids and errors of the homes quarantined so far, in registration
    /// order.
    pub fn quarantined(&self) -> Vec<(u64, &ModelError)> {
        self.homes
            .iter()
            .filter_map(|h| h.fault.as_ref().map(|e| (h.id, e)))
            .collect()
    }

    /// Delivers one round of ticks — `inputs[i]` to home `i`, `None` for a
    /// home with no tick this round — in parallel across all cores.
    /// Returns each home's outcome, aligned with `inputs`.
    ///
    /// A failing home is quarantined and reported in its slot; the other
    /// homes' streams still advance in the same round, so the router never
    /// desynchronizes (`ticks_pushed` only ever differs for quarantined
    /// homes).
    ///
    /// # Errors
    /// [`ModelError::LengthMismatch`] when `inputs` does not have exactly
    /// one slot per routed home (per-home failures are *not* errors here —
    /// they come back as [`HomeRound::Failed`]).
    pub fn push_round(
        &mut self,
        inputs: &[Option<&ObservedTick>],
    ) -> Result<Vec<HomeRound>, ModelError> {
        if inputs.len() != self.homes.len() {
            return Err(ModelError::LengthMismatch {
                what: "router input slots vs routed homes".into(),
                left: inputs.len(),
                right: self.homes.len(),
            });
        }
        let mut work: Vec<(&mut Home<'a>, Option<&ObservedTick>)> =
            self.homes.iter_mut().zip(inputs.iter().copied()).collect();
        let outcomes: Vec<HomeRound> = work
            .par_iter_mut()
            .map(|(home, tick)| {
                if home.fault.is_some() {
                    return HomeRound::Quarantined;
                }
                match tick {
                    None => HomeRound::Advanced(None),
                    Some(t) => match home.stream.push(t) {
                        Ok(decision) => HomeRound::Advanced(decision),
                        Err(e) => {
                            home.fault = Some(e.clone());
                            HomeRound::Failed(e)
                        }
                    },
                }
            })
            .collect();
        Ok(outcomes)
    }

    /// Finishes every stream in parallel, returning per-home results in
    /// registration order: the session-level [`Recognition`] for healthy
    /// homes, the quarantining error for faulted ones (finalization
    /// failures of healthy homes are likewise reported in their slot).
    pub fn finish(self) -> Vec<(u64, Result<Recognition, ModelError>)> {
        let mut slots: Vec<(u64, Option<ModelError>, Option<StreamingRecognizer<'a>>)> = self
            .homes
            .into_iter()
            .map(|h| (h.id, h.fault, Some(h.stream)))
            .collect();
        slots
            .par_iter_mut()
            .map(|(id, fault, slot)| {
                let stream = slot.take().expect("finish visits each slot once");
                let result = match fault.take() {
                    Some(e) => Err(e),
                    None => stream.finish(),
                };
                (*id, result)
            })
            .collect()
    }
}

impl Default for StreamRouter<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// Drives a recorded session through a streaming recognizer tick by tick —
/// the test/bench harness for batch-vs-streaming comparisons.
///
/// Returns the mid-stream decisions and the final [`Recognition`].
///
/// # Errors
/// Propagates any per-tick or finalization failure.
pub fn stream_session(
    engine: &CaceEngine,
    session: &Session,
    lag: Lag,
) -> Result<(Vec<StreamDecision>, Recognition), ModelError> {
    let mut stream = engine.stream(lag);
    let mut decisions = Vec::new();
    for tick in &session.ticks {
        if let Some(d) = stream.push(&tick.observed)? {
            decisions.push(d);
        }
    }
    let recognition = stream.finish()?;
    Ok((decisions, recognition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CaceConfig;
    use cace_behavior::{
        cace_grammar, generate_cace_dataset, session::train_test_split, SessionConfig,
    };

    fn corpus() -> (Vec<Session>, Vec<Session>) {
        let sessions = generate_cace_dataset(
            &cace_grammar(),
            1,
            4,
            &SessionConfig::tiny().with_ticks(80),
            31,
        );
        train_test_split(sessions, 0.75)
    }

    #[test]
    fn unbounded_stream_matches_batch_for_default_strategy() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let batch = engine.recognize(&test[0]).unwrap();
        let (decisions, streamed) = stream_session(&engine, &test[0], Lag::Unbounded).unwrap();
        assert!(decisions.is_empty(), "unbounded lag never emits mid-stream");
        assert_eq!(streamed.macros, batch.macros);
        assert_eq!(streamed.states_explored, batch.states_explored);
        assert_eq!(streamed.transition_ops, batch.transition_ops);
        assert_eq!(streamed.rules_fired, batch.rules_fired);
        assert_eq!(streamed.mean_joint_size, batch.mean_joint_size);
    }

    #[test]
    fn fixed_lag_emits_and_covers_the_whole_session() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let lag = 6;
        let (decisions, streamed) = stream_session(&engine, &test[0], Lag::Fixed(lag)).unwrap();
        assert_eq!(decisions.len(), test[0].len() - lag);
        for (i, d) in decisions.iter().enumerate() {
            assert_eq!(d.tick, i);
        }
        assert_eq!(streamed.macros[0].len(), test[0].len());
        // Emitted decisions are embedded unchanged in the final path.
        for d in &decisions {
            assert_eq!(streamed.macros[0][d.tick], d.macros[0]);
            assert_eq!(streamed.macros[1][d.tick], d.macros[1]);
        }
    }

    #[test]
    fn router_matches_individual_streams() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let mut router = StreamRouter::new();
        for (i, _) in test.iter().enumerate() {
            router
                .add_home(i as u64 + 100, engine.stream(Lag::Unbounded))
                .unwrap();
        }
        let max_len = test.iter().map(Session::len).max().unwrap();
        for t in 0..max_len {
            let inputs: Vec<Option<&ObservedTick>> = test
                .iter()
                .map(|s| s.ticks.get(t).map(|tick| &tick.observed))
                .collect();
            let round = router.push_round(&inputs).unwrap();
            assert!(round.iter().all(|r| matches!(r, HomeRound::Advanced(_))));
        }
        assert!(router.quarantined().is_empty());
        let finished = router.finish();
        assert_eq!(finished.len(), test.len());
        for ((id, result), session) in finished.iter().zip(&test) {
            assert!(*id >= 100);
            let streamed = result.as_ref().unwrap();
            let batch = engine.recognize(session).unwrap();
            assert_eq!(streamed.macros, batch.macros);
        }
    }

    #[test]
    fn router_rejects_mismatched_slot_count_without_panicking() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let mut router = StreamRouter::with_homes(&engine, 2, Lag::Unbounded);
        let inputs = vec![Some(&test[0].ticks[0].observed)];
        assert!(matches!(
            router.push_round(&inputs),
            Err(ModelError::LengthMismatch {
                left: 1,
                right: 2,
                ..
            })
        ));
        // The malformed round must not have advanced anyone.
        let ok_inputs = vec![Some(&test[0].ticks[0].observed), None];
        let round = router.push_round(&ok_inputs).unwrap();
        assert!(matches!(round[0], HomeRound::Advanced(_)));
    }

    #[test]
    fn router_quarantines_failing_home_and_keeps_serving_the_rest() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();

        let poison_at = 3usize;
        let mut poisoned_stream = engine.stream(Lag::Unbounded);
        poisoned_stream.poison_tick = Some(poison_at);

        let mut router = StreamRouter::new();
        router.add_home(7, engine.stream(Lag::Unbounded)).unwrap();
        router.add_home(8, poisoned_stream).unwrap();
        router.add_home(9, engine.stream(Lag::Unbounded)).unwrap();

        let session = &test[0];
        for (t, tick) in session.ticks.iter().enumerate() {
            let inputs = vec![Some(&tick.observed); 3];
            let round = router.push_round(&inputs).unwrap();
            // The healthy homes advance on every round, including the one
            // where their neighbour fails.
            assert!(matches!(round[0], HomeRound::Advanced(_)), "tick {t}");
            assert!(matches!(round[2], HomeRound::Advanced(_)), "tick {t}");
            if t < poison_at {
                assert!(matches!(round[1], HomeRound::Advanced(_)), "tick {t}");
            } else if t == poison_at {
                assert!(
                    matches!(
                        round[1],
                        HomeRound::Failed(ModelError::EmptyStateSpace { .. })
                    ),
                    "poisoned tick must fail, got {:?}",
                    round[1]
                );
            } else {
                assert!(
                    matches!(round[1], HomeRound::Quarantined),
                    "tick {t}: failed home must stay quarantined"
                );
            }
        }
        let quarantined = router.quarantined();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].0, 8);

        // The healthy homes were never desynchronized by the failure and
        // finish with the exact batch answer; the faulted home reports its
        // error instead of a bogus recognition.
        let finished = router.finish();
        let batch = engine.recognize(session).unwrap();
        for (id, result) in &finished {
            match id {
                7 | 9 => assert_eq!(result.as_ref().unwrap().macros, batch.macros),
                8 => assert!(matches!(result, Err(ModelError::EmptyStateSpace { .. }))),
                _ => panic!("unexpected home id {id}"),
            }
        }
    }

    #[test]
    fn router_finish_reports_per_home_failures() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let mut router = StreamRouter::with_homes(&engine, 2, Lag::Unbounded);
        // Home 0 receives ticks, home 1 never does — finishing an empty
        // stream is a per-home error, not a router-wide abort.
        for tick in &test[0].ticks[..10] {
            router.push_round(&[Some(&tick.observed), None]).unwrap();
        }
        let finished = router.finish();
        assert!(finished[0].1.is_ok());
        assert!(matches!(
            finished[1].1,
            Err(ModelError::InsufficientData { .. })
        ));
    }

    #[test]
    fn add_home_rejects_duplicate_ids() {
        let (train, _) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let mut router = StreamRouter::new();
        router.add_home(42, engine.stream(Lag::Unbounded)).unwrap();
        assert!(matches!(
            router.add_home(42, engine.stream(Lag::Unbounded)),
            Err(ModelError::InvalidConfig(_))
        ));
        // The failed registration left the router intact.
        assert_eq!(router.len(), 1);
        router.add_home(43, engine.stream(Lag::Unbounded)).unwrap();
        assert_eq!(router.len(), 2);
    }

    #[test]
    fn park_resume_mid_stream_is_bit_identical_for_every_strategy() {
        let (train, test) = corpus();
        let session = &test[0];
        for strategy in [
            Strategy::NaiveHmm,
            Strategy::NaiveCorrelation,
            Strategy::NaiveConstraint,
            Strategy::CorrelationConstraint,
        ] {
            let config = CaceConfig {
                strategy,
                ..CaceConfig::default()
            };
            let engine = CaceEngine::train(&train, &config).unwrap();
            let lag = Lag::Fixed(5);
            // Uninterrupted reference.
            let (want_decisions, want) = stream_session(&engine, session, lag).unwrap();
            // Interrupted run: park + rehydrate at a mid-stream tick.
            let mut stream = engine.stream(lag);
            let mut got_decisions = Vec::new();
            for tick in &session.ticks[..40] {
                if let Some(d) = stream.push(&tick.observed).unwrap() {
                    got_decisions.push(d);
                }
            }
            let parked = stream.park();
            drop(stream);
            assert_eq!(parked.ticks_pushed(), 40);
            assert_eq!(parked.strategy(), strategy);
            let mut resumed = engine.resume(&parked).unwrap();
            for tick in &session.ticks[40..] {
                if let Some(d) = resumed.push(&tick.observed).unwrap() {
                    got_decisions.push(d);
                }
            }
            let got = resumed.finish().unwrap();
            assert_eq!(got_decisions, want_decisions, "{strategy:?}");
            assert_eq!(got.macros, want.macros, "{strategy:?}");
            assert_eq!(got.states_explored, want.states_explored, "{strategy:?}");
            assert_eq!(got.transition_ops, want.transition_ops, "{strategy:?}");
            assert_eq!(got.rules_fired, want.rules_fired, "{strategy:?}");
            assert_eq!(got.mean_joint_size, want.mean_joint_size, "{strategy:?}");
        }
    }

    #[test]
    fn resume_rejects_strategy_and_cursor_mismatches() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let mut stream = engine.stream(Lag::Fixed(4));
        for tick in &test[0].ticks[..10] {
            stream.push(&tick.observed).unwrap();
        }
        let parked = stream.park();

        // A different-strategy engine must refuse the checkpoint.
        let nh_engine = CaceEngine::train(
            &train,
            &CaceConfig {
                strategy: Strategy::NaiveHmm,
                ..CaceConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            nh_engine.resume(&parked),
            Err(ModelError::Persistence { .. })
        ));

        // A desynchronized cursor must be caught before any decode.
        let mut tampered = parked.clone();
        tampered.pushed += 1;
        assert!(matches!(
            engine.resume(&tampered),
            Err(ModelError::Persistence { .. })
        ));

        // Out-of-range lag-1 evidence would panic inside the atom encoder.
        let mut tampered = parked.clone();
        tampered.prev[1].macro_id = Some(usize::MAX);
        assert!(matches!(
            engine.resume(&tampered),
            Err(ModelError::Persistence { .. })
        ));

        // The untampered checkpoint still resumes.
        assert!(engine.resume(&parked).is_ok());
    }

    #[test]
    fn shared_stream_outlives_the_borrow_scope() {
        let (train, test) = corpus();
        let engine =
            std::sync::Arc::new(CaceEngine::train(&train, &CaceConfig::default()).unwrap());
        let mut stream: StreamingRecognizer<'static> = stream_shared(&engine, Lag::Unbounded);
        for tick in &test[0].ticks {
            stream.push(&tick.observed).unwrap();
        }
        let parked = stream.park();
        let resumed = resume_shared(&engine, &parked).unwrap();
        let batch = engine.recognize(&test[0]).unwrap();
        assert_eq!(resumed.finish().unwrap().macros, batch.macros);
    }

    #[test]
    fn swap_model_to_identical_params_is_bit_identical_for_every_strategy() {
        let (train, test) = corpus();
        let session = &test[0];
        for strategy in [
            Strategy::NaiveHmm,
            Strategy::NaiveCorrelation,
            Strategy::NaiveConstraint,
            Strategy::CorrelationConstraint,
        ] {
            let config = CaceConfig {
                strategy,
                ..CaceConfig::default()
            };
            let engine = Arc::new(CaceEngine::train(&train, &config).unwrap());
            // An independently trained engine over the same corpus: a
            // distinct Arc, the same parameters (and so the same
            // fingerprint) — the swap machinery runs in full, the
            // numbers must not move.
            let twin = Arc::new(CaceEngine::train(&train, &config).unwrap());
            assert_eq!(engine.params.fingerprint(), twin.params.fingerprint());

            let lag = Lag::Fixed(5);
            let (want_decisions, want) = stream_session(&engine, session, lag).unwrap();

            let mut stream = stream_shared(&engine, lag);
            let mut got_decisions = Vec::new();
            for tick in &session.ticks[..40] {
                if let Some(d) = stream.push(&tick.observed).unwrap() {
                    got_decisions.push(d);
                }
            }
            stream.swap_model(&twin).unwrap();
            for tick in &session.ticks[40..] {
                if let Some(d) = stream.push(&tick.observed).unwrap() {
                    got_decisions.push(d);
                }
            }
            let got = stream.finish().unwrap();
            assert_eq!(got_decisions, want_decisions, "{strategy:?}");
            assert_eq!(got.macros, want.macros, "{strategy:?}");
            assert_eq!(got.states_explored, want.states_explored, "{strategy:?}");
            assert_eq!(got.transition_ops, want.transition_ops, "{strategy:?}");
            assert_eq!(got.rules_fired, want.rules_fired, "{strategy:?}");
        }
    }

    #[test]
    fn resume_rejects_model_fingerprint_mismatch_unless_migrated() {
        let (train, test) = corpus();
        let other_sessions = generate_cace_dataset(
            &cace_grammar(),
            1,
            4,
            &SessionConfig::tiny().with_ticks(80),
            99,
        );
        let (other_train, _) = train_test_split(other_sessions, 0.75);
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let other = CaceEngine::train(&other_train, &CaceConfig::default()).unwrap();
        assert_ne!(engine.params.fingerprint(), other.params.fingerprint());

        let mut stream = engine.stream(Lag::Fixed(4));
        for tick in &test[0].ticks[..10] {
            stream.push(&tick.observed).unwrap();
        }
        let parked = stream.park();
        assert_eq!(parked.model_fingerprint(), engine.params.fingerprint());

        // Same strategy, same decoder config, different parameters: the
        // silent resume is refused...
        assert!(matches!(
            other.resume(&parked),
            Err(ModelError::Persistence { .. })
        ));
        // ...while the explicit migration is honoured and keeps serving.
        let migrated = parked.migrated_to(&other);
        assert_eq!(migrated.model_fingerprint(), other.params.fingerprint());
        let mut resumed = other.resume(&migrated).unwrap();
        for tick in &test[0].ticks[10..] {
            resumed.push(&tick.observed).unwrap();
        }
        assert!(resumed.finish().is_ok());
        // The original checkpoint still resumes where it was taken.
        assert!(engine.resume(&parked).is_ok());
    }

    #[test]
    fn drift_capture_is_observational_and_survives_a_swap() {
        let (train, test) = corpus();
        let session = &test[0];
        let engine = Arc::new(CaceEngine::train(&train, &CaceConfig::default()).unwrap());
        let lag = Lag::Fixed(5);
        let (want_decisions, want) = stream_session(&engine, session, lag).unwrap();

        let mut stream = stream_shared(&engine, lag);
        assert!(!stream.drift_capture_enabled());
        stream.capture_drift(8);
        assert!(stream.drift_capture_enabled());
        let mut got_decisions = Vec::new();
        for tick in &session.ticks[..30] {
            if let Some(d) = stream.push(&tick.observed).unwrap() {
                got_decisions.push(d);
            }
        }
        // The swap carries the capture state, pending ticks included:
        // 30 pushed = 3 complete windows + 6 pending.
        stream.swap_model(&engine).unwrap();
        assert!(stream.drift_capture_enabled());
        for tick in &session.ticks[30..] {
            if let Some(d) = stream.push(&tick.observed).unwrap() {
                got_decisions.push(d);
            }
        }
        let windows = stream.take_drift_windows();
        assert_eq!(windows.len(), session.len() / 8);
        assert!(windows.iter().all(|w| w.len() == 8));
        assert!(
            stream.take_drift_windows().is_empty(),
            "windows drain exactly once"
        );
        // Capture never moved a decision.
        let got = stream.finish().unwrap();
        assert_eq!(got_decisions, want_decisions);
        assert_eq!(got.macros, want.macros);
    }

    #[test]
    fn empty_stream_errors_like_empty_session() {
        let (train, _) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        assert!(matches!(
            engine.stream(Lag::Unbounded).finish(),
            Err(ModelError::InsufficientData { .. })
        ));
    }

    #[test]
    fn cohort_push_is_bit_identical_to_scalar_pushes_for_every_strategy() {
        let (train, test) = corpus();
        let session = &test[0];
        for strategy in [
            Strategy::NaiveHmm,
            Strategy::NaiveCorrelation,
            Strategy::NaiveConstraint,
            Strategy::CorrelationConstraint,
        ] {
            let config = CaceConfig {
                strategy,
                ..CaceConfig::default()
            };
            let engine = CaceEngine::train(&train, &config).unwrap();
            let lag = Lag::Fixed(5);
            let n = 5;
            let mut cohort: Vec<StreamingRecognizer<'_>> =
                (0..n).map(|_| engine.stream(lag)).collect();
            let mut scalar: Vec<StreamingRecognizer<'_>> =
                (0..n).map(|_| engine.stream(lag)).collect();
            let mut total_batched = 0usize;
            for tick in &session.ticks {
                let mut refs: Vec<&mut StreamingRecognizer<'_>> = cohort.iter_mut().collect();
                let outcome = push_cohort(&mut refs, &tick.observed);
                assert_eq!(outcome.batched + outcome.fallback, n, "{strategy:?}");
                total_batched += outcome.batched;
                for (s, r) in scalar.iter_mut().zip(outcome.results) {
                    assert_eq!(s.push(&tick.observed).unwrap(), r.unwrap(), "{strategy:?}");
                }
            }
            // The very first tick has no frontier to batch; every later
            // tick must go through the fused kernel under the default
            // exact decoder.
            assert_eq!(
                total_batched,
                n * (session.len() - 1),
                "{strategy:?}: cohort should batch every post-init tick"
            );
            for (c, s) in cohort.into_iter().zip(scalar) {
                let got = c.finish().unwrap();
                let want = s.finish().unwrap();
                assert_eq!(got.macros, want.macros, "{strategy:?}");
                assert_eq!(got.states_explored, want.states_explored, "{strategy:?}");
                assert_eq!(got.transition_ops, want.transition_ops, "{strategy:?}");
                assert_eq!(got.rules_fired, want.rules_fired, "{strategy:?}");
                assert_eq!(got.mean_joint_size, want.mean_joint_size, "{strategy:?}");
            }
        }
    }

    #[test]
    fn cohort_push_diverts_mismatched_homes_to_the_scalar_path() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let session = &test[0];
        // Two lag-6 homes can share; the lag-2 home must be diverted.
        let mut a = engine.stream(Lag::Fixed(6));
        let mut b = engine.stream(Lag::Fixed(6));
        let mut c = engine.stream(Lag::Fixed(2));
        let mut want_a = engine.stream(Lag::Fixed(6));
        let mut want_c = engine.stream(Lag::Fixed(2));
        for (t, tick) in session.ticks.iter().take(20).enumerate() {
            let mut refs: Vec<&mut StreamingRecognizer<'_>> = vec![&mut a, &mut b, &mut c];
            let outcome = push_cohort(&mut refs, &tick.observed);
            if t == 0 {
                assert_eq!(outcome.batched, 0, "no frontier to batch on tick 0");
            } else {
                assert_eq!(outcome.batched, 2, "the lag-6 pair batches");
                assert_eq!(outcome.fallback, 1, "the lag-2 home is diverted");
            }
            let wa = want_a.push(&tick.observed).unwrap();
            let wc = want_c.push(&tick.observed).unwrap();
            let mut rs = outcome.results.into_iter();
            assert_eq!(rs.next().unwrap().unwrap(), wa);
            assert_eq!(rs.next().unwrap().unwrap(), wa);
            assert_eq!(rs.next().unwrap().unwrap(), wc);
        }
        let got = a.finish().unwrap();
        let want = want_a.finish().unwrap();
        assert_eq!(got.macros, want.macros);
        assert_eq!(got.transition_ops, want.transition_ops);
        assert_eq!(c.finish().unwrap().macros, want_c.finish().unwrap().macros);
    }

    #[test]
    fn cohort_push_preserves_park_resume_and_poison_containment() {
        let (train, test) = corpus();
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let session = &test[0];
        // A poisoned home inside a cohort fails alone; its neighbours'
        // batched decisions and subsequent park/resume state are
        // untouched.
        let mut healthy = engine.stream(Lag::Fixed(4));
        let mut healthy2 = engine.stream(Lag::Fixed(4));
        let mut poisoned = engine.stream(Lag::Fixed(4));
        poisoned.poison_tick = Some(3);
        let mut reference = engine.stream(Lag::Fixed(4));
        for (t, tick) in session.ticks.iter().take(10).enumerate() {
            let mut refs: Vec<&mut StreamingRecognizer<'_>> =
                vec![&mut healthy, &mut poisoned, &mut healthy2];
            let outcome = push_cohort(&mut refs, &tick.observed);
            let want = reference.push(&tick.observed).unwrap();
            assert_eq!(*outcome.results[0].as_ref().unwrap(), want, "tick {t}");
            assert_eq!(*outcome.results[2].as_ref().unwrap(), want, "tick {t}");
            if t == 3 {
                assert!(matches!(
                    outcome.results[1],
                    Err(ModelError::EmptyStateSpace { .. })
                ));
            }
        }
        // The cohort-pushed stream parks and resumes bit-identically.
        let parked = healthy.park();
        let mut resumed = engine.resume(&parked).unwrap();
        for tick in &session.ticks[10..] {
            let want = reference.push(&tick.observed).unwrap();
            assert_eq!(resumed.push(&tick.observed).unwrap(), want);
        }
        let got = resumed.finish().unwrap();
        let want = reference.finish().unwrap();
        assert_eq!(got.macros, want.macros);
        assert_eq!(got.states_explored, want.states_explored);
        assert_eq!(got.transition_ops, want.transition_ops);
    }
}
