//! Micro-activity classifiers (context planar).
//!
//! Random forests over the 32-feature frames, replacing the paper's WEKA
//! forests: one for postural states (smartphone) and one for oral-gestural
//! states (neck tag). Also the macro-level "direct" classifier the NH
//! strategy uses (features directly labeled with the macro activity).

use cace_behavior::Session;
use cace_features::{extract_session, SessionFeatures};
use cace_learn::{ForestConfig, RandomForest};
use cace_model::{Gestural, ModelError, Postural};
use serde::{Deserialize, Serialize};

/// Trained micro classifiers plus the NH macro classifier.
///
/// Serializable as part of the engine snapshot (train once, serve many).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MicroClassifiers {
    /// Postural forest (smartphone features).
    pub postural: RandomForest,
    /// Gestural forest (neck-tag features); absent for CASAS-style data.
    pub gestural: Option<RandomForest>,
    /// Macro forest over concatenated phone+tag features (NH strategy).
    pub direct_macro: RandomForest,
}

fn forest_config() -> ForestConfig {
    ForestConfig {
        n_trees: 12,
        ..ForestConfig::default()
    }
}

/// Zero-vector placeholder for a dropped frame when concatenating features.
fn concat_features(phone: Option<&[f64]>, tag: Option<&[f64]>, dim: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(2 * dim);
    out.extend_from_slice(phone.unwrap_or(&[]));
    out.resize(dim, 0.0);
    out.extend_from_slice(tag.unwrap_or(&[]));
    out.resize(2 * dim, 0.0);
    out
}

impl MicroClassifiers {
    /// Trains all classifiers from labeled sessions.
    ///
    /// `stride` subsamples training ticks (1 = every tick) to bound
    /// training cost on large corpora.
    ///
    /// # Errors
    /// Returns [`ModelError::InsufficientData`] when no usable frames exist.
    pub fn train(
        sessions: &[Session],
        features: &[SessionFeatures],
        n_macro: usize,
        stride: usize,
        seed: u64,
    ) -> Result<Self, ModelError> {
        let stride = stride.max(1);
        let mut post_x = Vec::new();
        let mut post_y = Vec::new();
        let mut gest_x = Vec::new();
        let mut gest_y = Vec::new();
        let mut macro_x = Vec::new();
        let mut macro_y = Vec::new();
        let mut any_gestural = false;
        let dim = cace_features::FEATURE_COUNT;

        for (session, feats) in sessions.iter().zip(features) {
            any_gestural |= session.has_gestural;
            for (t, tick) in session.ticks.iter().enumerate().step_by(stride) {
                for u in 0..2 {
                    let f = &feats.per_tick[t][u];
                    if let Some(phone) = &f.phone {
                        post_x.push(phone.to_vec());
                        post_y.push(tick.truth[u].micro.postural.index());
                    }
                    if let Some(tag) = &f.tag {
                        gest_x.push(tag.to_vec());
                        gest_y.push(tick.truth[u].micro.gestural.index());
                    }
                    macro_x.push(concat_features(
                        f.phone.as_ref().map(|v| v.as_slice()),
                        f.tag.as_ref().map(|v| v.as_slice()),
                        dim,
                    ));
                    macro_y.push(tick.labels[u]);
                }
            }
        }
        if post_x.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "postural classifier training".into(),
                available: 0,
                required: 1,
            });
        }

        let postural =
            RandomForest::fit(&post_x, &post_y, Postural::COUNT, &forest_config(), seed)?;
        let gestural = if any_gestural && !gest_x.is_empty() {
            Some(RandomForest::fit(
                &gest_x,
                &gest_y,
                Gestural::COUNT,
                &forest_config(),
                seed ^ 0x9e37,
            )?)
        } else {
            None
        };
        let direct_macro =
            RandomForest::fit(&macro_x, &macro_y, n_macro, &forest_config(), seed ^ 0x79b9)?;
        Ok(Self {
            postural,
            gestural,
            direct_macro,
        })
    }

    /// Postural log-probabilities of one tick's phone features (uniform
    /// when the frame was dropped).
    pub fn postural_log_proba(&self, phone: Option<&[f64]>) -> Vec<f64> {
        match phone {
            Some(f) => self.postural.predict_log_proba(f),
            None => vec![-(Postural::COUNT as f64).ln(); Postural::COUNT],
        }
    }

    /// Gestural log-probabilities (uniform when dropped or untrained).
    pub fn gestural_log_proba(&self, tag: Option<&[f64]>) -> Vec<f64> {
        match (&self.gestural, tag) {
            (Some(model), Some(f)) => model.predict_log_proba(f),
            _ => vec![-(Gestural::COUNT as f64).ln(); Gestural::COUNT],
        }
    }

    /// NH-style macro log-probabilities from concatenated features.
    pub fn macro_log_proba(&self, phone: Option<&[f64]>, tag: Option<&[f64]>) -> Vec<f64> {
        let dim = cace_features::FEATURE_COUNT;
        self.direct_macro
            .predict_log_proba(&concat_features(phone, tag, dim))
    }
}

/// Convenience: extract features for many sessions at once.
pub fn extract_all(sessions: &[Session]) -> Vec<SessionFeatures> {
    sessions.iter().map(extract_session).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{cace_grammar, simulate_session, SessionConfig};

    fn setup() -> (Vec<Session>, Vec<SessionFeatures>) {
        let g = cace_grammar();
        let sessions: Vec<Session> = (0..2)
            .map(|i| simulate_session(&g, &SessionConfig::tiny(), 100 + i))
            .collect();
        let features = extract_all(&sessions);
        (sessions, features)
    }

    #[test]
    fn classifiers_train_and_score() {
        let (sessions, features) = setup();
        let clf = MicroClassifiers::train(&sessions, &features, 11, 1, 42).unwrap();
        assert!(clf.gestural.is_some());

        // In-sample accuracy on posturals should be strong (the paper's
        // postural forest reaches ≈98.6 % on its testbed).
        let mut correct = 0usize;
        let mut total = 0usize;
        for (s, f) in sessions.iter().zip(&features) {
            for (t, tick) in s.ticks.iter().enumerate() {
                for u in 0..2 {
                    if let Some(phone) = &f.per_tick[t][u].phone {
                        let lp = clf.postural_log_proba(Some(phone.as_slice()));
                        let pred = lp
                            .iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                            .unwrap()
                            .0;
                        total += 1;
                        if pred == tick.truth[u].micro.postural.index() {
                            correct += 1;
                        }
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.85, "in-sample postural accuracy {acc}");
    }

    #[test]
    fn dropped_frames_yield_uniform_scores() {
        let (sessions, features) = setup();
        let clf = MicroClassifiers::train(&sessions, &features, 11, 2, 43).unwrap();
        let lp = clf.postural_log_proba(None);
        assert_eq!(lp.len(), Postural::COUNT);
        assert!(lp.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        let lg = clf.gestural_log_proba(None);
        assert_eq!(lg.len(), Gestural::COUNT);
    }

    #[test]
    fn macro_classifier_produces_distribution() {
        let (sessions, features) = setup();
        let clf = MicroClassifiers::train(&sessions, &features, 11, 2, 44).unwrap();
        let f = &features[0].per_tick[10][0];
        let lp = clf.macro_log_proba(
            f.phone.as_ref().map(|v| v.as_slice()),
            f.tag.as_ref().map(|v| v.as_slice()),
        );
        assert_eq!(lp.len(), 11);
        let mass: f64 = lp.iter().map(|l| l.exp()).sum();
        assert!((mass - 1.0).abs() < 0.05, "mass {mass}");
    }
}
