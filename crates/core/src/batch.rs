//! Parallel batch recognition.
//!
//! Heavy evaluation workloads — the fig 9 / fig 10 table benches, k-fold
//! sweeps, multi-home corpora — recognize many independent sessions
//! against one trained engine. [`CaceEngine::recognize_batch`] fans those
//! sessions out across all cores with rayon while sharing the read-only
//! model:
//!
//! * the trained [`CaceEngine`] is borrowed immutably by every worker
//!   (training state is never mutated during recognition), and the HDBN
//!   parameter tables inside it are `Arc`-backed, so per-session decoders
//!   alias one parameter set instead of copying CPTs;
//! * everything per-session — feature extraction, candidate pruning, and
//!   the Viterbi trellis — is allocated inside the worker, so sessions
//!   share no mutable state.
//!
//! Fan-out preserves order and determinism: `recognize_batch` returns
//! exactly `[recognize(s) for s in sessions]`, bit-for-bit on the decoded
//! macro sequences (wall-clock fields aside), and short-circuits to the
//! first error in input order.

use std::time::Instant;

use cace_behavior::Session;
use cace_model::ModelError;
use rayon::prelude::*;

use crate::engine::{CaceEngine, Recognition};

/// Outcome of a timed batch run: per-session recognitions plus the
/// aggregate wall-clock accounting a throughput experiment needs.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One [`Recognition`] per input session, in input order.
    pub recognitions: Vec<Recognition>,
    /// Wall-clock seconds for the whole fan-out.
    pub wall_seconds: f64,
    /// Worker threads the fan-out had available.
    pub workers: usize,
}

impl BatchReport {
    /// Sessions recognized per wall-clock second.
    pub fn sessions_per_second(&self) -> f64 {
        self.recognitions.len() as f64 / self.wall_seconds.max(1e-12)
    }

    /// Sum of the per-session recognition times *as measured during this
    /// parallel run*. An upper-bound proxy for one-core cost only: worker
    /// contention inflates each term, so do not derive a speedup claim
    /// from it — time an actual sequential loop instead (as
    /// `examples/batch_speedup.rs` does).
    pub fn sequential_seconds(&self) -> f64 {
        self.recognitions.iter().map(|r| r.wall_seconds).sum()
    }
}

impl CaceEngine {
    /// Recognizes a batch of sessions in parallel.
    ///
    /// Results are in input order and identical to calling
    /// [`recognize`](CaceEngine::recognize) per session (modulo the
    /// measured `wall_seconds` in each [`Recognition`]).
    ///
    /// # Errors
    /// Returns the first (in input order) per-session recognition failure.
    pub fn recognize_batch(&self, sessions: &[Session]) -> Result<Vec<Recognition>, ModelError> {
        sessions
            .par_iter()
            .map(|session| self.recognize(session))
            .collect()
    }

    /// [`recognize_batch`](CaceEngine::recognize_batch) with wall-clock and
    /// worker accounting for throughput experiments.
    ///
    /// # Errors
    /// Returns the first (in input order) per-session recognition failure.
    pub fn recognize_batch_report(&self, sessions: &[Session]) -> Result<BatchReport, ModelError> {
        let start = Instant::now();
        let recognitions = self.recognize_batch(sessions)?;
        Ok(BatchReport {
            recognitions,
            wall_seconds: start.elapsed().as_secs_f64(),
            workers: rayon::current_num_threads(),
        })
    }
}

// recognize_batch shares one `&CaceEngine` across worker threads; keep the
// engine (and everything it contains) `Sync` so that stays true by
// construction.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<CaceEngine>();
};
