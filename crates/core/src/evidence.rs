//! Run-time evidence construction.
//!
//! The pruning engine fires rules on *observed facts*. At each tick we
//! assemble, per user: the beacon-derived sub-location (and its room), the
//! confidently classified postural and gestural states, plus — as lag-1
//! items — the states committed for the previous tick. Ambient PIR/object
//! firings are unattributed and therefore never enter per-user evidence
//! directly; they shape the candidate scores instead.

use cace_behavior::ObservedTick;
use cace_mining::item::{Atom, Item};
use cace_mining::{AtomSpace, ItemId};
use serde::{Deserialize, Serialize};

/// Confidence thresholds for promoting classifier outputs to evidence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvidenceConfig {
    /// Minimum posterior probability to assert a postural state.
    pub postural_confidence: f64,
    /// Minimum posterior probability to assert a gestural state.
    pub gestural_confidence: f64,
    /// Maximum beacon residual (meters) to assert a sub-location.
    pub beacon_max_residual: f64,
}

impl Default for EvidenceConfig {
    fn default() -> Self {
        Self {
            postural_confidence: 0.7,
            gestural_confidence: 0.7,
            beacon_max_residual: 1.5,
        }
    }
}

/// The committed (decoded or observed) state of one user at the previous
/// tick, re-encoded as lag-1 evidence.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrevState {
    /// Previous macro activity, if committed.
    pub macro_id: Option<usize>,
    /// Previous sub-location, if committed.
    pub location: Option<usize>,
}

fn top1(log_proba: &[f64]) -> (usize, f64) {
    let (idx, &lp) = log_proba
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite log-probs"))
        .expect("nonempty distribution");
    (idx, lp.exp())
}

/// Builds the sorted evidence item list of one tick.
///
/// `postural_lp` / `gestural_lp` are per-user classifier log-probabilities
/// (gestural entries `None` when the modality is absent).
pub fn build_evidence(
    space: &AtomSpace,
    observed: &ObservedTick,
    postural_lp: &[Vec<f64>; 2],
    gestural_lp: &[Option<Vec<f64>>; 2],
    prev: &[PrevState; 2],
    config: &EvidenceConfig,
) -> Vec<ItemId> {
    let mut evidence = Vec::with_capacity(12);
    for u in 0..2u8 {
        let uu = u as usize;
        // Location evidence: beacon (CACE) or unique sub-location motion
        // when only one resident candidate region fired (CASAS keeps this
        // ambiguous, so only the beacon path asserts location).
        if let Some(beacon) = &observed.per_user[uu].beacon {
            if beacon.in_home && beacon.residual <= config.beacon_max_residual {
                let loc = beacon.nearest.index();
                evidence.push(space.encode(Item {
                    user: u,
                    lag: 0,
                    atom: Atom::Location(loc as u16),
                }));
                evidence.push(space.encode(Item {
                    user: u,
                    lag: 0,
                    atom: Atom::Room(space.loc_to_room[loc] as u16),
                }));
            }
        }
        // Classifier evidence.
        let (p_idx, p_conf) = top1(&postural_lp[uu]);
        if p_conf >= config.postural_confidence {
            evidence.push(space.encode(Item {
                user: u,
                lag: 0,
                atom: Atom::Postural(p_idx as u16),
            }));
        }
        if let Some(glp) = &gestural_lp[uu] {
            let (g_idx, g_conf) = top1(glp);
            if g_conf >= config.gestural_confidence {
                evidence.push(space.encode(Item {
                    user: u,
                    lag: 0,
                    atom: Atom::Gestural(g_idx as u16),
                }));
            }
        }
        // Lag-1 committed state.
        if let Some(m) = prev[uu].macro_id {
            evidence.push(space.encode(Item {
                user: u,
                lag: 1,
                atom: Atom::Macro(m as u16),
            }));
        }
        if let Some(l) = prev[uu].location {
            evidence.push(space.encode(Item {
                user: u,
                lag: 1,
                atom: Atom::Location(l as u16),
            }));
        }
    }
    evidence.sort_unstable();
    evidence.dedup();
    evidence
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{cace_grammar, simulate_session, SessionConfig};
    use cace_sensing::NoiseConfig;

    #[test]
    fn evidence_contains_beacon_location_when_clean() {
        let g = cace_grammar();
        let cfg = SessionConfig::tiny().with_noise(NoiseConfig::noiseless());
        let session = simulate_session(&g, &cfg, 1);
        let space = AtomSpace::cace();
        // Pick a tick late enough for the beacon smoothing to settle.
        let tick = &session.ticks[20];
        let postural_lp = [vec![0.0; 6], vec![0.0; 6]]; // uninformative
        let gestural_lp = [None, None];
        let evidence = build_evidence(
            &space,
            &tick.observed,
            &postural_lp,
            &gestural_lp,
            &[PrevState::default(), PrevState::default()],
            &EvidenceConfig::default(),
        );
        // There must be at least one location atom per user.
        let locs = evidence
            .iter()
            .filter(|&&id| matches!(space.decode(id).unwrap().atom, Atom::Location(_)))
            .count();
        assert!(locs >= 1, "expected location evidence, got {evidence:?}");
        // Sorted and unique.
        assert!(evidence.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unconfident_classifiers_stay_silent() {
        let space = AtomSpace::cace();
        let observed = cace_behavior::ObservedTick {
            room_motion: [false; 6],
            subloc_motion: None,
            items: None,
            objects: [false; 8],
            per_user: [Default::default(), Default::default()],
        };
        let uniform = vec![-(6f64).ln(); 6];
        let evidence = build_evidence(
            &space,
            &observed,
            &[uniform.clone(), uniform],
            &[None, None],
            &[PrevState::default(), PrevState::default()],
            &EvidenceConfig::default(),
        );
        assert!(evidence.is_empty(), "nothing confident: {evidence:?}");
    }

    #[test]
    fn confident_posture_is_asserted() {
        let space = AtomSpace::cace();
        let observed = cace_behavior::ObservedTick {
            room_motion: [false; 6],
            subloc_motion: None,
            items: None,
            objects: [false; 8],
            per_user: [Default::default(), Default::default()],
        };
        let mut confident = vec![-10.0; 6];
        confident[3] = -0.01; // ≈ 0.99 probability on postural 3
        let uniform = vec![-(6f64).ln(); 6];
        let evidence = build_evidence(
            &space,
            &observed,
            &[confident, uniform],
            &[None, None],
            &[PrevState::default(), PrevState::default()],
            &EvidenceConfig::default(),
        );
        assert_eq!(evidence.len(), 1);
        let item = space.decode(evidence[0]).unwrap();
        assert_eq!(item.user, 0);
        assert!(matches!(item.atom, Atom::Postural(3)));
    }

    #[test]
    fn previous_state_becomes_lag1_evidence() {
        let space = AtomSpace::cace();
        let observed = cace_behavior::ObservedTick {
            room_motion: [false; 6],
            subloc_motion: None,
            items: None,
            objects: [false; 8],
            per_user: [Default::default(), Default::default()],
        };
        let uniform = vec![-(6f64).ln(); 6];
        let prev = [
            PrevState {
                macro_id: Some(2),
                location: Some(9),
            },
            PrevState::default(),
        ];
        let evidence = build_evidence(
            &space,
            &observed,
            &[uniform.clone(), uniform],
            &[None, None],
            &prev,
            &EvidenceConfig::default(),
        );
        let decoded: Vec<Item> = evidence.iter().map(|&i| space.decode(i).unwrap()).collect();
        assert!(decoded
            .iter()
            .any(|i| i.lag == 1 && matches!(i.atom, Atom::Macro(2))));
        assert!(decoded
            .iter()
            .any(|i| i.lag == 1 && matches!(i.atom, Atom::Location(9))));
    }
}
