//! Versioned snapshots: persist a trained [`CaceEngine`] — and, since v3,
//! a parked mid-session stream ([`ParkedStream`]) — and reload either in a
//! fresh serving process. Engines are the "train once, serve many" half of
//! the paper's pipeline; parked streams are the serving tier's unit of
//! eviction (a cold home's decoder state, rehydratable bit-identically).
//!
//! A snapshot is a single text file:
//!
//! ```text
//! CACE-SNAPSHOT v3 fnv1a64=<16-hex checksum of payload>
//! <one-line JSON payload>
//! ```
//!
//! The v3 payload leads with a `"kind"` discriminator (`"engine"` or
//! `"stream"`), so each reader can reject the other kind's bytes with a
//! clear error instead of a field-level parse failure. v2 payloads predate
//! the discriminator and are always engine snapshots; the engine reader
//! still accepts them (back-compat), while the stream reader — whose kind
//! did not exist before v3 — does not.
//!
//! The engine payload serializes everything recognition depends on — the
//! engine configuration, atom space, trained forests, mined rule set, the
//! constraint miner's statistics, the (possibly EM-refined) HDBN
//! parameters, and the NH baseline tables — through the `serde` shim's
//! lossless JSON backend (finite `f64`s round-trip bit-exactly; the
//! `±inf`/`NaN` tokens cover the non-finite trellis scores a parked stream
//! can carry). Derived artifacts are *rebuilt* on load rather than stored:
//! the HDBN log tables re-derive from `(stats, config)` and the pruning
//! engine from the rule set, so a loaded engine's `recognize`/`stream`
//! output is bit-identical to the engine that was saved
//! (`tests/persistence_roundtrip.rs` asserts this across all four
//! strategies; `tests/streaming_equivalence.rs` asserts the parked-stream
//! counterpart at every park position).

use std::fs;
use std::path::Path;
use std::sync::Arc;

use cace_hdbn::wire::{self, ByteReader, ByteWriter};
use cace_hdbn::HdbnParams;
use cace_mining::PruningEngine;
use cace_model::ModelError;
use serde::{Deserialize, Serialize};

use crate::engine::CaceEngine;
use crate::evidence::PrevState;
use crate::nh::{ParkedFlat, ParkedFlatEntry};
use crate::strategy::Strategy;
use crate::stream::{ParkedDecoder, ParkedStream};

/// Leading magic token of the header line.
const MAGIC: &str = "CACE-SNAPSHOT";
/// Current snapshot format version. v3 added the leading `"kind"`
/// discriminator and the parked-stream kind; v2 added the engine's
/// [`DecoderConfig`](cace_hdbn::DecoderConfig) (frontier beam) to the
/// persisted configuration. v2 engine payloads (kindless) still load; v1
/// payloads predate the persisted beam and are rejected rather than
/// silently defaulted, so a served beam is always the trained one.
const VERSION: u32 = 3;
/// Oldest engine-snapshot version the reader accepts.
const MIN_ENGINE_VERSION: u32 = 2;

/// 64-bit FNV-1a over the payload bytes (fast, dependency-free integrity
/// check — corruption detection, not cryptographic authentication). Also
/// the serving tier's stable home→shard hash, so shard assignment never
/// depends on process-local state.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn persist_err(what: impl Into<String>) -> ModelError {
    ModelError::Persistence { what: what.into() }
}

/// Deserializes one named field of the snapshot payload.
fn field<T: Deserialize>(payload: &serde::Value, name: &str) -> Result<T, ModelError> {
    let value = payload
        .expect_field(name, "engine snapshot")
        .map_err(|e| persist_err(e.to_string()))?;
    T::deserialize(value).map_err(|e| persist_err(format!("field `{name}`: {e}")))
}

/// Renders a checksummed snapshot around an already-serialized payload.
fn render_snapshot(payload: &str) -> String {
    let checksum = fnv1a64(payload.as_bytes());
    format!("{MAGIC} v{VERSION} fnv1a64={checksum:016x}\n{payload}")
}

/// Parses the header line and verifies the payload checksum; returns the
/// stated format version and the (verified, still-serialized) payload.
fn verify_header(text: &str) -> Result<(u32, &str), ModelError> {
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| persist_err("snapshot has no header line"))?;
    // Tolerate one trailing newline (editors, `>>`, eol normalization):
    // the payload is a single JSON line, so a bare line ending after it
    // cannot be content — strip it before hashing.
    let payload = payload
        .strip_suffix('\n')
        .map(|p| p.strip_suffix('\r').unwrap_or(p))
        .unwrap_or(payload);
    let mut tokens = header.split_whitespace();
    if tokens.next() != Some(MAGIC) {
        return Err(persist_err(format!(
            "not a {MAGIC} file (header `{header}`)"
        )));
    }
    let version = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse::<u32>().ok())
        .ok_or_else(|| persist_err(format!("malformed version in header `{header}`")))?;
    let stated = tokens
        .next()
        .and_then(|t| t.strip_prefix("fnv1a64="))
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| persist_err(format!("malformed checksum in header `{header}`")))?;
    let actual = fnv1a64(payload.as_bytes());
    if stated != actual {
        return Err(persist_err(format!(
            "checksum mismatch: header says {stated:016x}, payload hashes to {actual:016x}"
        )));
    }
    Ok((version, payload))
}

impl CaceEngine {
    /// The engine's snapshot payload as a JSON value — shared between the
    /// standalone engine snapshot and the embedded engine inside a
    /// [`ModelRecord`].
    fn payload_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            // The kind discriminator leads the payload (v3 format rule),
            // so readers can classify a snapshot from its first bytes.
            ("kind".to_string(), serde::Value::Str("engine".to_string())),
            ("config".to_string(), self.config.serialize()),
            ("space".to_string(), self.space.serialize()),
            ("n_macro".to_string(), self.n_macro.serialize()),
            ("has_gestural".to_string(), self.has_gestural.serialize()),
            ("classifiers".to_string(), self.classifiers.serialize()),
            ("rules".to_string(), self.rules.serialize()),
            ("stats".to_string(), self.stats.serialize()),
            ("params".to_string(), self.params.as_ref().serialize()),
            // The NH table serves from a dense flat layout; the payload
            // keeps the historical nested-rows shape (bitwise the same
            // values), so the format is unchanged and the flat table is
            // rebuilt on load like every other derived artifact.
            (
                "nh_log_trans".to_string(),
                self.nh_log_trans.to_rows().serialize(),
            ),
            ("nh_hmm".to_string(), self.nh_hmm.serialize()),
        ])
    }

    /// Renders the trained engine as a self-contained snapshot string
    /// (versioned header + checksum + JSON payload).
    pub fn to_snapshot_string(&self) -> String {
        render_snapshot(&serde::json::value_to_string(&self.payload_value()))
    }

    /// Reconstructs an engine from [`to_snapshot_string`](Self::to_snapshot_string) output.
    ///
    /// Accepts the current v3 format (`"kind": "engine"`) and the kindless
    /// v2 engine format it replaced; a v3 *stream* snapshot is rejected by
    /// kind, not by a confusing missing-field error.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on a malformed header, an unsupported
    /// version, a checksum mismatch, a non-engine kind, or an invalid
    /// payload.
    pub fn from_snapshot_str(text: &str) -> Result<Self, ModelError> {
        let (version, payload) = verify_header(text)?;
        if !(MIN_ENGINE_VERSION..=VERSION).contains(&version) {
            return Err(persist_err(format!(
                "unsupported snapshot version {version} \
                 (this build reads v{MIN_ENGINE_VERSION}..v{VERSION})"
            )));
        }
        let payload = serde::json::value_from_str(payload)
            .map_err(|e| persist_err(format!("payload parse error: {e}")))?;
        Self::from_payload(version, &payload)
    }

    /// Rebuilds an engine from an already-parsed (and
    /// checksum-verified) snapshot payload.
    fn from_payload(version: u32, payload: &serde::Value) -> Result<Self, ModelError> {
        // v2 payloads predate the kind discriminator and are engine
        // snapshots by definition; v3 payloads must say so.
        if version >= 3 {
            let kind: String = field(payload, "kind")?;
            if kind != "engine" {
                return Err(persist_err(format!(
                    "snapshot kind `{kind}` is not an engine snapshot"
                )));
            }
        }
        let config: crate::engine::CaceConfig = field(payload, "config")?;
        let rules: cace_mining::RuleSet = field(payload, "rules")?;
        // Derived state is rebuilt, not stored: the pruning engine from the
        // rules, the HDBN log tables (inside `HdbnParams::deserialize`)
        // from the mined statistics.
        let pruner = if config.strategy.uses_correlation_pruning() {
            Some(PruningEngine::new(rules.clone()))
        } else {
            None
        };
        let params: HdbnParams = field(payload, "params")?;
        let nh_rows: Vec<Vec<f64>> = field(payload, "nh_log_trans")?;
        Ok(Self {
            space: field(payload, "space")?,
            n_macro: field(payload, "n_macro")?,
            has_gestural: field(payload, "has_gestural")?,
            classifiers: field(payload, "classifiers")?,
            stats: field(payload, "stats")?,
            params: Arc::new(params),
            nh_log_trans: crate::nh::FlatTable::from_rows(&nh_rows),
            nh_hmm: field(payload, "nh_hmm")?,
            config,
            rules,
            pruner,
        })
    }

    /// Writes the trained engine to `path` as a versioned, checksummed
    /// snapshot.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        let path = path.as_ref();
        fs::write(path, self.to_snapshot_string())
            .map_err(|e| persist_err(format!("writing {}: {e}", path.display())))
    }

    /// Loads an engine previously written by [`save`](Self::save) —
    /// typically in a fresh serving process that never saw the training
    /// data.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on I/O failure or any verification
    /// failure described in [`from_snapshot_str`](Self::from_snapshot_str).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| persist_err(format!("reading {}: {e}", path.display())))?;
        Self::from_snapshot_str(&text)
    }
}

impl ParkedStream {
    /// Renders the parked stream as a self-contained snapshot string —
    /// same versioned, checksummed envelope as an engine snapshot, with
    /// `"kind": "stream"`. This is the byte form a serving tier keeps for
    /// an evicted home.
    pub fn to_snapshot_string(&self) -> String {
        let payload = serde::json::value_to_string(&serde::Value::Map(vec![
            ("kind".to_string(), serde::Value::Str("stream".to_string())),
            ("stream".to_string(), self.serialize()),
        ]));
        render_snapshot(&payload)
    }

    /// Reconstructs a parked stream from
    /// [`to_snapshot_string`](Self::to_snapshot_string) output.
    ///
    /// This only checks the envelope (header, checksum, kind) and the
    /// payload *shape*; the structural validation against a concrete
    /// engine happens in [`CaceEngine::resume`], which is the first point
    /// where the model dimensions are known.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on a malformed header, a non-v3
    /// version (parked streams did not exist before v3), a checksum
    /// mismatch, a non-stream kind, or an invalid payload.
    pub fn from_snapshot_str(text: &str) -> Result<Self, ModelError> {
        let (version, payload) = verify_header(text)?;
        if version != VERSION {
            return Err(persist_err(format!(
                "unsupported stream snapshot version {version} (this build reads v{VERSION})"
            )));
        }
        let payload = serde::json::value_from_str(payload)
            .map_err(|e| persist_err(format!("payload parse error: {e}")))?;
        let kind: String = field(&payload, "kind")?;
        if kind != "stream" {
            return Err(persist_err(format!(
                "snapshot kind `{kind}` is not a parked stream"
            )));
        }
        field(&payload, "stream")
    }
}

/// One published generation of a named model, as the serving tier
/// persists it: the registry name, the generation index, and the full
/// engine serving that generation. This is the unit of **roll forward /
/// roll back** for online adaptation — every
/// [`publish_model`](crate::router::ShardedRouter::publish_model) /
/// [`adapt_model`](crate::router::ShardedRouter::adapt_model) outcome can
/// be exported as a record, archived, and re-imported later to restore
/// exactly that generation.
#[derive(Debug, Clone)]
pub struct ModelRecord {
    /// Registry name of the model this generation belongs to.
    pub name: String,
    /// Generation index: 0 is the as-trained engine, each successful
    /// adaptation or explicit publish appends the next index.
    pub generation: usize,
    /// The engine serving this generation.
    pub engine: CaceEngine,
}

impl ModelRecord {
    /// Renders the record as a self-contained snapshot string — the same
    /// versioned, checksummed v3 envelope as engine and stream snapshots,
    /// with `"kind": "model-record"` and the engine payload embedded.
    pub fn to_snapshot_string(&self) -> String {
        let payload = serde::json::value_to_string(&serde::Value::Map(vec![
            (
                "kind".to_string(),
                serde::Value::Str("model-record".to_string()),
            ),
            ("name".to_string(), self.name.serialize()),
            ("generation".to_string(), self.generation.serialize()),
            ("engine".to_string(), self.engine.payload_value()),
        ]));
        render_snapshot(&payload)
    }

    /// Reconstructs a record from
    /// [`to_snapshot_string`](Self::to_snapshot_string) output.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on a malformed header, a non-v3
    /// version (model records did not exist before v3), a checksum
    /// mismatch, a different kind, or an invalid payload.
    pub fn from_snapshot_str(text: &str) -> Result<Self, ModelError> {
        let (version, payload) = verify_header(text)?;
        if version != VERSION {
            return Err(persist_err(format!(
                "unsupported model-record snapshot version {version} \
                 (this build reads v{VERSION})"
            )));
        }
        let payload = serde::json::value_from_str(payload)
            .map_err(|e| persist_err(format!("payload parse error: {e}")))?;
        let kind: String = field(&payload, "kind")?;
        if kind != "model-record" {
            return Err(persist_err(format!(
                "snapshot kind `{kind}` is not a model record"
            )));
        }
        let engine_payload = payload
            .expect_field("engine", "model-record snapshot")
            .map_err(|e| persist_err(e.to_string()))?;
        Ok(ModelRecord {
            name: field(&payload, "name")?,
            generation: field(&payload, "generation")?,
            engine: CaceEngine::from_payload(VERSION, engine_payload)?,
        })
    }

    /// Writes the record to `path` as a versioned, checksummed snapshot.
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ModelError> {
        let path = path.as_ref();
        fs::write(path, self.to_snapshot_string())
            .map_err(|e| persist_err(format!("writing {}: {e}", path.display())))
    }

    /// Loads a record previously written by [`save`](Self::save).
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on I/O failure or any verification
    /// failure described in
    /// [`from_snapshot_str`](Self::from_snapshot_str).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ModelError> {
        let path = path.as_ref();
        let text = fs::read_to_string(path)
            .map_err(|e| persist_err(format!("reading {}: {e}", path.display())))?;
        Self::from_snapshot_str(&text)
    }
}

/// Binary-kind discriminator token in the snapshot header line.
const BIN_KIND: &str = "kind=stream-bin";

fn write_strategy(w: &mut ByteWriter, s: Strategy) {
    w.write_u8(match s {
        Strategy::NaiveHmm => 0,
        Strategy::NaiveCorrelation => 1,
        Strategy::NaiveConstraint => 2,
        Strategy::CorrelationConstraint => 3,
    });
}

fn read_strategy(r: &mut ByteReader<'_>) -> Result<Strategy, ModelError> {
    match r.read_u8()? {
        0 => Ok(Strategy::NaiveHmm),
        1 => Ok(Strategy::NaiveCorrelation),
        2 => Ok(Strategy::NaiveConstraint),
        3 => Ok(Strategy::CorrelationConstraint),
        t => Err(persist_err(format!("unknown strategy tag {t}"))),
    }
}

fn write_flat(w: &mut ByteWriter, f: &ParkedFlat) {
    w.write_seq(&f.v, |w, &x| w.write_f64(x));
    w.write_seq(&f.v32, |w, &x| w.write_f32(x));
    w.write_seq(&f.window, |w, e| {
        w.write_seq(&e.states, |w, &(a, c)| {
            w.write_usize(a);
            w.write_usize(c);
        });
        w.write_seq(&e.back, |w, &x| w.write_u32(x));
    });
    w.write_usize(f.base);
    w.write_usize(f.pushed);
    w.write_seq(&f.emitted, |w, &x| w.write_usize(x));
    w.write_u64(f.states_explored);
    w.write_u64(f.transition_ops);
    w.write_bool(f.pruned);
    w.write_seq(&f.keep, |w, &x| w.write_u32(x));
}

fn read_flat(r: &mut ByteReader<'_>) -> Result<ParkedFlat, ModelError> {
    Ok(ParkedFlat {
        v: r.read_seq(8, ByteReader::read_f64)?,
        v32: r.read_seq(4, ByteReader::read_f32)?,
        window: r.read_seq(1, |r| {
            Ok(ParkedFlatEntry {
                states: r.read_seq(2, |r| Ok((r.read_usize()?, r.read_usize()?)))?,
                back: r.read_seq(1, ByteReader::read_u32)?,
            })
        })?,
        base: r.read_usize()?,
        pushed: r.read_usize()?,
        emitted: r.read_seq(1, ByteReader::read_usize)?,
        states_explored: r.read_u64()?,
        transition_ops: r.read_u64()?,
        pruned: r.read_bool()?,
        keep: r.read_seq(1, ByteReader::read_u32)?,
    })
}

fn write_decoder_state(w: &mut ByteWriter, state: &ParkedDecoder) {
    match state {
        ParkedDecoder::Nh(flats) => {
            w.write_u8(0);
            for f in flats {
                write_flat(w, f);
            }
        }
        ParkedDecoder::Single(chains) => {
            w.write_u8(1);
            for c in chains {
                c.encode_into(w);
            }
        }
        ParkedDecoder::Coupled(coupled) => {
            w.write_u8(2);
            coupled.encode_into(w);
        }
    }
}

fn read_decoder_state(r: &mut ByteReader<'_>) -> Result<ParkedDecoder, ModelError> {
    match r.read_u8()? {
        0 => Ok(ParkedDecoder::Nh([read_flat(r)?, read_flat(r)?])),
        1 => Ok(ParkedDecoder::Single([
            cace_hdbn::ParkedChain::decode_from(r)?,
            cace_hdbn::ParkedChain::decode_from(r)?,
        ])),
        2 => Ok(ParkedDecoder::Coupled(
            cace_hdbn::ParkedCoupled::decode_from(r)?,
        )),
        t => Err(persist_err(format!("unknown parked decoder tag {t}"))),
    }
}

impl ParkedStream {
    /// Renders the parked stream as a **binary** snapshot: the same
    /// checksummed envelope discipline as the JSON form, but with a
    /// `kind=stream-bin` header token, an explicit payload byte length,
    /// and the compact little-endian payload of [`cace_hdbn::wire`] —
    /// floats as raw IEEE bits, so the round trip is bit-exact by
    /// construction. Several times smaller and cheaper to encode/decode
    /// than the JSON form; both kinds resume bit-identically.
    ///
    /// ```text
    /// CACE-SNAPSHOT v3 kind=stream-bin fnv1a64=<16-hex> len=<payload bytes>
    /// <raw payload bytes>
    /// ```
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_strategy(&mut w, self.strategy);
        wire::write_decoder(&mut w, self.decoder);
        wire::write_lag(&mut w, self.lag);
        write_decoder_state(&mut w, &self.state);
        for prev in &self.prev {
            w.write_opt_usize(prev.macro_id);
            w.write_opt_usize(prev.location);
        }
        w.write_usize(self.pushed);
        w.write_f64(self.joint_size_sum);
        w.write_u64(self.rules_fired);
        w.write_u64(self.ncr_prev_sqrt);
        w.write_u64(self.ncr_ops);
        w.write_f64(self.wall_seconds);
        w.write_u64(self.model_fp);
        let payload = w.into_bytes();
        let checksum = fnv1a64(&payload);
        let mut out = format!(
            "{MAGIC} v{VERSION} {BIN_KIND} fnv1a64={checksum:016x} len={}\n",
            payload.len()
        )
        .into_bytes();
        out.extend_from_slice(&payload);
        out
    }

    /// Reconstructs a parked stream from
    /// [`to_snapshot_bytes`](Self::to_snapshot_bytes) output. Envelope
    /// checks (magic, version, kind, stated length, checksum) run before
    /// any payload decode; like the JSON reader, structural validation
    /// against a concrete engine happens at [`CaceEngine::resume`].
    ///
    /// # Errors
    /// [`ModelError::Persistence`] on a malformed header, a non-v3
    /// version, a non-binary kind, a length or checksum mismatch, or
    /// malformed payload bytes.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, ModelError> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| persist_err("binary snapshot has no header line"))?;
        let header = std::str::from_utf8(&bytes[..newline])
            .map_err(|_| persist_err("binary snapshot header is not UTF-8"))?;
        let payload = &bytes[newline + 1..];
        let mut tokens = header.split_whitespace();
        if tokens.next() != Some(MAGIC) {
            return Err(persist_err(format!(
                "not a {MAGIC} file (header `{header}`)"
            )));
        }
        let version = tokens
            .next()
            .and_then(|t| t.strip_prefix('v'))
            .and_then(|t| t.parse::<u32>().ok())
            .ok_or_else(|| persist_err(format!("malformed version in header `{header}`")))?;
        if version != VERSION {
            return Err(persist_err(format!(
                "unsupported stream snapshot version {version} (this build reads v{VERSION})"
            )));
        }
        let kind = tokens
            .next()
            .ok_or_else(|| persist_err(format!("missing kind in header `{header}`")))?;
        if kind != BIN_KIND {
            return Err(persist_err(format!(
                "snapshot token `{kind}` is not a binary parked stream"
            )));
        }
        let stated = tokens
            .next()
            .and_then(|t| t.strip_prefix("fnv1a64="))
            .and_then(|t| u64::from_str_radix(t, 16).ok())
            .ok_or_else(|| persist_err(format!("malformed checksum in header `{header}`")))?;
        let len = tokens
            .next()
            .and_then(|t| t.strip_prefix("len="))
            .and_then(|t| t.parse::<usize>().ok())
            .ok_or_else(|| persist_err(format!("malformed length in header `{header}`")))?;
        if len != payload.len() {
            return Err(persist_err(format!(
                "payload length mismatch: header says {len}, {} bytes follow",
                payload.len()
            )));
        }
        let actual = fnv1a64(payload);
        if stated != actual {
            return Err(persist_err(format!(
                "checksum mismatch: header says {stated:016x}, payload hashes to {actual:016x}"
            )));
        }
        let mut r = ByteReader::new(payload);
        let parked = Self {
            strategy: read_strategy(&mut r)?,
            decoder: wire::read_decoder(&mut r)?,
            lag: wire::read_lag(&mut r)?,
            state: read_decoder_state(&mut r)?,
            prev: [
                PrevState {
                    macro_id: r.read_opt_usize()?,
                    location: r.read_opt_usize()?,
                },
                PrevState {
                    macro_id: r.read_opt_usize()?,
                    location: r.read_opt_usize()?,
                },
            ],
            pushed: r.read_usize()?,
            joint_size_sum: r.read_f64()?,
            rules_fired: r.read_u64()?,
            ncr_prev_sqrt: r.read_u64()?,
            ncr_ops: r.read_u64()?,
            wall_seconds: r.read_f64()?,
            model_fp: r.read_u64()?,
        };
        r.expect_end()?;
        Ok(parked)
    }

    /// Reconstructs a parked stream from either snapshot kind, sniffing
    /// the header: a `kind=stream-bin` token routes to the binary reader,
    /// anything else is treated as the UTF-8 JSON form. This is what a
    /// serving tier uses on bytes whose provenance it does not control
    /// (imports, handovers).
    ///
    /// # Errors
    /// Those of the kind-specific reader the bytes route to.
    pub fn from_snapshot_any(bytes: &[u8]) -> Result<Self, ModelError> {
        let header_end = bytes
            .iter()
            .position(|&b| b == b'\n')
            .unwrap_or(bytes.len());
        let is_binary = std::str::from_utf8(&bytes[..header_end])
            .is_ok_and(|h| h.split_whitespace().any(|t| t == BIN_KIND));
        if is_binary {
            Self::from_snapshot_bytes(bytes)
        } else {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| persist_err("snapshot is neither binary-kind nor UTF-8 text"))?;
            Self::from_snapshot_str(text)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CaceConfig;
    use crate::strategy::Strategy;
    use cace_behavior::{cace_grammar, generate_cace_dataset, SessionConfig};

    fn tiny_engine(strategy: Strategy) -> (CaceEngine, Vec<cace_behavior::Session>) {
        let sessions = generate_cace_dataset(
            &cace_grammar(),
            1,
            3,
            &SessionConfig::tiny().with_ticks(60),
            91,
        );
        let engine = CaceEngine::train(
            &sessions[..2],
            &CaceConfig::default().with_strategy(strategy),
        )
        .unwrap();
        (engine, sessions)
    }

    #[test]
    fn snapshot_string_round_trips_with_identical_recognition() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let text = engine.to_snapshot_string();
        let loaded = CaceEngine::from_snapshot_str(&text).unwrap();
        let a = engine.recognize(&sessions[2]).unwrap();
        let b = loaded.recognize(&sessions[2]).unwrap();
        assert_eq!(a.macros, b.macros);
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transition_ops, b.transition_ops);
        assert_eq!(a.rules_fired, b.rules_fired);
        assert_eq!(a.mean_joint_size.to_bits(), b.mean_joint_size.to_bits());
    }

    #[test]
    fn header_is_versioned_and_checksummed() {
        let (engine, _) = tiny_engine(Strategy::NaiveCorrelation);
        let text = engine.to_snapshot_string();
        assert!(text.starts_with("CACE-SNAPSHOT v3 fnv1a64="));
        // The kind discriminator leads the payload (v3 format rule).
        let payload = text.split_once('\n').unwrap().1;
        assert!(payload.starts_with("{\"kind\":\"engine\""), "{payload:.40}");

        // Flip one payload byte → checksum mismatch.
        let mut corrupted = text.clone();
        let flip_at = corrupted.rfind("0.").unwrap_or(corrupted.len() - 2);
        corrupted.replace_range(flip_at..flip_at + 1, "9");
        assert!(matches!(
            CaceEngine::from_snapshot_str(&corrupted),
            Err(ModelError::Persistence { .. })
        ));

        // Wrong version (older or newer than this build).
        let wrong = text.replacen("v3", "v9", 1);
        let err = CaceEngine::from_snapshot_str(&wrong).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let wrong = text.replacen("v3", "v1", 1);
        let err = CaceEngine::from_snapshot_str(&wrong).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Not a snapshot at all.
        assert!(matches!(
            CaceEngine::from_snapshot_str("hello\nworld"),
            Err(ModelError::Persistence { .. })
        ));

        // One appended trailing newline (editor save, `>>`, eol
        // normalization) must still load.
        assert!(CaceEngine::from_snapshot_str(&format!("{text}\n")).is_ok());
        assert!(CaceEngine::from_snapshot_str(&format!("{text}\r\n")).is_ok());
        // But not two — that is content corruption.
        assert!(CaceEngine::from_snapshot_str(&format!("{text}\n\n")).is_err());
    }

    /// Re-wraps a payload in a fresh header with the given version —
    /// string surgery for back/forward-compat tests.
    fn reheader(payload: &str, version: u32) -> String {
        let checksum = fnv1a64(payload.as_bytes());
        format!("{MAGIC} v{version} fnv1a64={checksum:016x}\n{payload}")
    }

    #[test]
    fn v2_engine_snapshots_still_load() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let text = engine.to_snapshot_string();
        let payload = text.split_once('\n').unwrap().1;
        // A v2 snapshot is exactly the v3 payload without the leading kind
        // discriminator, under a v2 header.
        let v2_payload = payload.replacen("{\"kind\":\"engine\",", "{", 1);
        assert_ne!(v2_payload, payload, "surgery must remove the kind field");
        let v2 = reheader(&v2_payload, 2);
        let loaded = CaceEngine::from_snapshot_str(&v2).unwrap();
        let a = engine.recognize(&sessions[2]).unwrap();
        let b = loaded.recognize(&sessions[2]).unwrap();
        assert_eq!(a.macros, b.macros);
        assert_eq!(a.states_explored, b.states_explored);

        // But a v3 snapshot without a kind is malformed, not engine-by-
        // default: the discriminator is mandatory from v3 on.
        let kindless_v3 = reheader(&v2_payload, 3);
        assert!(matches!(
            CaceEngine::from_snapshot_str(&kindless_v3),
            Err(ModelError::Persistence { .. })
        ));
    }

    #[test]
    fn engine_and_stream_readers_reject_each_others_kind() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let mut stream = engine.stream(cace_hdbn::Lag::Fixed(3));
        for tick in &sessions[2].ticks[..8] {
            stream.push(&tick.observed).unwrap();
        }
        let stream_text = stream.park().to_snapshot_string();
        assert!(stream_text.starts_with("CACE-SNAPSHOT v3 fnv1a64="));

        let err = CaceEngine::from_snapshot_str(&stream_text).unwrap_err();
        assert!(err.to_string().contains("kind `stream`"), "{err}");
        let err = ParkedStream::from_snapshot_str(&engine.to_snapshot_string()).unwrap_err();
        assert!(err.to_string().contains("kind `engine`"), "{err}");
    }

    #[test]
    fn parked_stream_snapshot_round_trips_to_identical_continuation() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let session = &sessions[2];
        let lag = cace_hdbn::Lag::Fixed(4);
        let mut reference = engine.stream(lag);
        let mut interrupted = engine.stream(lag);
        for tick in &session.ticks[..20] {
            reference.push(&tick.observed).unwrap();
            interrupted.push(&tick.observed).unwrap();
        }
        let bytes = interrupted.park().to_snapshot_string();
        drop(interrupted);
        let parked = ParkedStream::from_snapshot_str(&bytes).unwrap();
        assert_eq!(parked.ticks_pushed(), 20);
        let mut resumed = engine.resume(&parked).unwrap();
        for tick in &session.ticks[20..] {
            let a = reference.push(&tick.observed).unwrap();
            let b = resumed.push(&tick.observed).unwrap();
            assert_eq!(a, b);
        }
        let a = reference.finish().unwrap();
        let b = resumed.finish().unwrap();
        assert_eq!(a.macros, b.macros);
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transition_ops, b.transition_ops);
        assert_eq!(a.rules_fired, b.rules_fired);
        assert_eq!(a.mean_joint_size.to_bits(), b.mean_joint_size.to_bits());

        // Tampered parked bytes are rejected by checksum, not decoded.
        let mut corrupted = bytes.clone();
        let flip_at = corrupted.rfind("0.").unwrap_or(corrupted.len() - 2);
        corrupted.replace_range(flip_at..flip_at + 1, "9");
        assert!(matches!(
            ParkedStream::from_snapshot_str(&corrupted),
            Err(ModelError::Persistence { .. })
        ));
    }

    #[test]
    fn binary_stream_snapshot_round_trips_to_identical_continuation() {
        for strategy in crate::strategy::Strategy::ALL {
            let (engine, sessions) = tiny_engine(strategy);
            let session = &sessions[2];
            let lag = cace_hdbn::Lag::Fixed(4);
            let mut reference = engine.stream(lag);
            let mut interrupted = engine.stream(lag);
            for tick in &session.ticks[..20] {
                reference.push(&tick.observed).unwrap();
                interrupted.push(&tick.observed).unwrap();
            }
            let checkpoint = interrupted.park();
            let json = checkpoint.to_snapshot_string();
            let bytes = checkpoint.to_snapshot_bytes();
            assert!(
                bytes.len() * 2 < json.len(),
                "binary kind should be far smaller: {} vs {} bytes",
                bytes.len(),
                json.len()
            );
            drop(interrupted);
            let parked = ParkedStream::from_snapshot_bytes(&bytes).unwrap();
            assert_eq!(parked.ticks_pushed(), 20);
            let mut resumed = engine.resume(&parked).unwrap();
            for tick in &session.ticks[20..] {
                let a = reference.push(&tick.observed).unwrap();
                let b = resumed.push(&tick.observed).unwrap();
                assert_eq!(a, b);
            }
            let a = reference.finish().unwrap();
            let b = resumed.finish().unwrap();
            assert_eq!(a.macros, b.macros);
            assert_eq!(a.states_explored, b.states_explored);
            assert_eq!(a.transition_ops, b.transition_ops);
            assert_eq!(a.rules_fired, b.rules_fired);
            assert_eq!(a.mean_joint_size.to_bits(), b.mean_joint_size.to_bits());

            // The sniffing reader routes both kinds correctly.
            let via_any = ParkedStream::from_snapshot_any(&bytes).unwrap();
            assert_eq!(via_any.ticks_pushed(), 20);
            let via_any = ParkedStream::from_snapshot_any(json.as_bytes()).unwrap();
            assert_eq!(via_any.ticks_pushed(), 20);
        }
    }

    #[test]
    fn binary_stream_snapshot_rejects_tampering() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let mut stream = engine.stream(cace_hdbn::Lag::Fixed(3));
        for tick in &sessions[2].ticks[..10] {
            stream.push(&tick.observed).unwrap();
        }
        let bytes = stream.park().to_snapshot_bytes();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        assert!(bytes.starts_with(b"CACE-SNAPSHOT v3 kind=stream-bin fnv1a64="));

        // Flip one payload byte: checksum mismatch, decode never runs.
        let mut corrupted = bytes.clone();
        let mid = header_end + 1 + (corrupted.len() - header_end - 1) / 2;
        corrupted[mid] ^= 0xff;
        let err = ParkedStream::from_snapshot_bytes(&corrupted).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncated payload: stated length disagrees with the bytes.
        let err = ParkedStream::from_snapshot_bytes(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("length"), "{err}");

        // The engine JSON reader and the binary reader reject each other.
        assert!(ParkedStream::from_snapshot_bytes(engine.to_snapshot_string().as_bytes()).is_err());
        assert!(
            ParkedStream::from_snapshot_str(std::str::from_utf8(&bytes).unwrap_or("")).is_err()
        );
    }

    #[test]
    fn model_fingerprint_survives_both_codecs_and_gates_resume() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let mut stream = engine.stream(cace_hdbn::Lag::Fixed(3));
        for tick in &sessions[2].ticks[..10] {
            stream.push(&tick.observed).unwrap();
        }
        let checkpoint = stream.park();
        let want_fp = checkpoint.model_fingerprint();

        let via_json = ParkedStream::from_snapshot_str(&checkpoint.to_snapshot_string()).unwrap();
        assert_eq!(via_json.model_fingerprint(), want_fp);
        let via_bin = ParkedStream::from_snapshot_bytes(&checkpoint.to_snapshot_bytes()).unwrap();
        assert_eq!(via_bin.model_fingerprint(), want_fp);

        // A checkpoint whose recorded model fingerprint was altered (a
        // stale archive, a cross-fleet import) is refused at resume with
        // a Persistence error, never decoded against the wrong model.
        let mut stale = checkpoint.clone();
        stale.model_fp ^= 1;
        let err = match engine.resume(&stale) {
            Err(e) => e,
            Ok(_) => panic!("stale model fingerprint must not resume"),
        };
        assert!(err.to_string().contains("migrate"), "{err}");
        assert!(engine.resume(&checkpoint).is_ok());
    }

    #[test]
    fn model_record_round_trips_and_rejects_other_kinds() {
        let (engine, sessions) = tiny_engine(Strategy::CorrelationConstraint);
        let record = ModelRecord {
            name: "cace-main".to_string(),
            generation: 3,
            engine: engine.clone(),
        };
        let text = record.to_snapshot_string();
        assert!(text.starts_with("CACE-SNAPSHOT v3 fnv1a64="));
        let payload = text.split_once('\n').unwrap().1;
        assert!(
            payload.starts_with("{\"kind\":\"model-record\""),
            "{payload:.40}"
        );

        let loaded = ModelRecord::from_snapshot_str(&text).unwrap();
        assert_eq!(loaded.name, "cace-main");
        assert_eq!(loaded.generation, 3);
        assert_eq!(
            loaded.engine.params.fingerprint(),
            engine.params.fingerprint()
        );
        let a = engine.recognize(&sessions[2]).unwrap();
        let b = loaded.engine.recognize(&sessions[2]).unwrap();
        assert_eq!(a.macros, b.macros);

        // Kind discipline holds in all directions.
        let err = ModelRecord::from_snapshot_str(&engine.to_snapshot_string()).unwrap_err();
        assert!(err.to_string().contains("kind `engine`"), "{err}");
        let err = CaceEngine::from_snapshot_str(&text).unwrap_err();
        assert!(err.to_string().contains("kind `model-record`"), "{err}");

        // Filesystem round trip.
        let path =
            std::env::temp_dir().join(format!("cace_model_record_{}.cace", std::process::id()));
        record.save(&path).unwrap();
        let from_disk = ModelRecord::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(from_disk.generation, 3);
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (engine, sessions) = tiny_engine(Strategy::NaiveHmm);
        let path =
            std::env::temp_dir().join(format!("cace_snapshot_test_{}.cace", std::process::id()));
        engine.save(&path).unwrap();
        let loaded = CaceEngine::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let a = engine.recognize(&sessions[2]).unwrap();
        let b = loaded.recognize(&sessions[2]).unwrap();
        assert_eq!(a.macros, b.macros);
        assert!(matches!(
            CaceEngine::load(&path),
            Err(ModelError::Persistence { .. })
        ));
    }
}
