//! Training transactions for the rule miners (§V-A).
//!
//! Each transaction carries the context atoms of *both* users at `t` and
//! `t − 1` — 94-element context tuples in the paper's counting — built from
//! the labeled training sessions.

use cace_behavior::Session;
use cace_mining::item::atoms_of_tick;
use cace_mining::{AtomSpace, Transaction};

/// Builds the transaction corpus of one session.
pub fn session_transactions(space: &AtomSpace, session: &Session) -> Vec<Transaction> {
    let mut out = Vec::with_capacity(session.len());
    for t in 0..session.len() {
        let mut items = Vec::with_capacity(20);
        for u in 0..2u8 {
            for lag in 0..2u8 {
                let Some(tick) = t.checked_sub(lag as usize).map(|i| &session.ticks[i]) else {
                    continue;
                };
                let uu = u as usize;
                let micro = tick.truth[uu].micro;
                let gestural = if session.has_gestural {
                    Some(micro.gestural.index())
                } else {
                    None
                };
                items.extend(atoms_of_tick(
                    space,
                    u,
                    lag,
                    tick.labels[uu],
                    micro.postural.index(),
                    gestural,
                    micro.location.index(),
                ));
            }
        }
        out.push(Transaction::new(items));
    }
    out
}

/// Builds the corpus of a whole training set.
pub fn corpus(space: &AtomSpace, sessions: &[Session]) -> Vec<Transaction> {
    sessions
        .iter()
        .flat_map(|s| session_transactions(space, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{
        cace_grammar, generate_casas_dataset, simulate_session, CasasConfig, SessionConfig,
    };
    use cace_mining::item::Atom;

    #[test]
    fn transactions_have_both_lags_after_first_tick() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 1);
        let space = AtomSpace::cace();
        let txns = session_transactions(&space, &session);
        assert_eq!(txns.len(), session.len());
        // First tick: only lag-0 items (2 users × 5 atoms).
        assert_eq!(txns[0].len(), 10);
        // Later ticks: up to 20 items (duplicates collapse).
        assert!(txns[5].len() > 10);
        assert!(txns[5].len() <= 20);
    }

    #[test]
    fn items_decode_into_valid_atoms() {
        let g = cace_grammar();
        let session = simulate_session(&g, &SessionConfig::tiny(), 2);
        let space = AtomSpace::cace();
        for txn in session_transactions(&space, &session).iter().take(20) {
            for &id in txn.items() {
                let item = space.decode(id).expect("valid item");
                assert!(item.user < 2 && item.lag < 2);
            }
        }
    }

    #[test]
    fn casas_transactions_have_no_gestural_atoms() {
        let sessions = generate_casas_dataset(&CasasConfig::tiny(), 3);
        let space = AtomSpace::casas();
        let txns = corpus(&space, &sessions[..1]);
        for txn in &txns {
            for &id in txn.items() {
                let item = space.decode(id).expect("valid item");
                assert!(
                    !matches!(item.atom, Atom::Gestural(_)),
                    "CASAS transactions must not carry gestural atoms"
                );
            }
        }
    }

    #[test]
    fn corpus_concatenates_sessions() {
        let g = cace_grammar();
        let s1 = simulate_session(&g, &SessionConfig::tiny(), 4);
        let s2 = simulate_session(&g, &SessionConfig::tiny(), 5);
        let space = AtomSpace::cace();
        let total = corpus(&space, &[s1.clone(), s2.clone()]).len();
        assert_eq!(total, s1.len() + s2.len());
    }
}
