//! The CACE engine: training and run-time recognition.

use std::sync::Arc;
use std::time::Instant;

use cace_baselines::Hmm;
use cace_behavior::Session;
use cace_features::SessionFeatures;
use cace_hdbn::{
    fit_em_shared as hdbn_fit_em_shared, trellis, BeamScratch, CoupledHdbn, DecoderConfig,
    EmConfig, HdbnConfig, HdbnParams, Precision, SingleHdbn, StepScratch, TickInput,
};
use cace_mining::constraint::{ConstraintMiner, LabeledSequence};
use cace_mining::rules::mine_negative_rules;
use cace_mining::{
    initial_cace_rules, mine_rules, AprioriConfig, AtomSpace, HierarchicalStats, PruningEngine,
    RuleSet,
};
use cace_model::{ModelError, StateMask};

use crate::classifiers::{extract_all, MicroClassifiers};
use crate::evidence::{EvidenceConfig, PrevState};
use crate::nh;
use crate::statespace::TickPreparer;
use crate::strategy::Strategy;
use crate::transactions::corpus;

/// Engine configuration.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CaceConfig {
    /// Pruning strategy (Fig 11).
    pub strategy: Strategy,
    /// Modality mask (Fig 8a ablations).
    pub mask: StateMask,
    /// Maximum micro candidates per user per tick for *unpruned* spaces
    /// (the beam that keeps the coupled NCS decoder finite).
    pub beam: usize,
    /// Micro-candidate cap for the exhaustive NH strategy ("all possible
    /// states in the state space"); much larger than `beam` because NH
    /// refuses to exploit any structure to shrink its trellis.
    pub nh_beam: usize,
    /// Decode-time frontier pruning ([`cace_hdbn::Beam`]): `Exact` by
    /// default (bit-identical to the historical decoders); `TopK`/
    /// `LogThreshold` bound the per-tick trellis frontier the decoders
    /// carry forward, on top of the candidate beams above. Applies to
    /// every strategy, batch and streaming alike, and round-trips through
    /// engine snapshots.
    pub decoder: DecoderConfig,
    /// Apriori thresholds (paper defaults: 4 % / 99 %).
    pub apriori: AprioriConfig,
    /// Whether to seed the rule set with the Base-application initial rules
    /// (Fig 12, CACE vocabulary only).
    pub use_initial_rules: bool,
    /// Whether to refine parameters with EM after the constraint miner.
    pub run_em: bool,
    /// EM schedule when `run_em` is set.
    pub em: EmConfig,
    /// Evidence-promotion thresholds.
    pub evidence: EvidenceConfig,
    /// Training-tick stride for the classifiers.
    pub classifier_stride: usize,
    /// Inter-user coupling weight for coupled strategies (Augmentation 3
    /// ablation; `1.0` = the mined co-occurrence CPT, `0.0` = independent
    /// chains even under NCS/C2).
    pub coupling_weight: f64,
    /// Hierarchy weight (Augmentation 2 ablation; scales the
    /// `P(micro | macro)` factors).
    pub hierarchy_weight: f64,
    /// RNG seed for classifier training.
    pub seed: u64,
}

impl Default for CaceConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::CorrelationConstraint,
            mask: StateMask::FULL,
            beam: 8,
            nh_beam: 64,
            decoder: DecoderConfig::default(),
            apriori: AprioriConfig {
                max_itemset: 3,
                ..AprioriConfig::paper_default()
            },
            use_initial_rules: false,
            run_em: false,
            em: EmConfig::default(),
            evidence: EvidenceConfig::default(),
            classifier_stride: 2,
            coupling_weight: 1.0,
            hierarchy_weight: 1.0,
            seed: 0xCACE,
        }
    }
}

impl CaceConfig {
    /// Builder-style strategy override.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style mask override.
    pub fn with_mask(mut self, mask: StateMask) -> Self {
        self.mask = mask;
        self
    }

    /// Builder-style decoder (frontier beam) override.
    pub fn with_decoder(mut self, decoder: DecoderConfig) -> Self {
        self.decoder = decoder;
        self
    }
}

/// Output of one recognition run.
#[derive(Debug, Clone, PartialEq)]
pub struct Recognition {
    /// Decoded macro activities per user per tick.
    pub macros: [Vec<usize>; 2],
    /// Σ joint states instantiated (overhead metric 1).
    pub states_explored: u64,
    /// Σ transition evaluations (overhead metric 2).
    pub transition_ops: u64,
    /// Wall-clock seconds spent in recognition.
    pub wall_seconds: f64,
    /// Mean per-tick joint candidate-space size after pruning.
    pub mean_joint_size: f64,
    /// Total rule firings during pruning.
    pub rules_fired: u64,
}

impl Recognition {
    /// Tick-level accuracy against a session's ground truth.
    pub fn accuracy(&self, session: &Session) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for u in 0..2 {
            for (t, tick) in session.ticks.iter().enumerate() {
                total += 1;
                if self.macros[u][t] == tick.labels[u] {
                    correct += 1;
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }
}

/// A trained CACE engine.
#[derive(Debug, Clone)]
pub struct CaceEngine {
    pub(crate) config: CaceConfig,
    pub(crate) space: AtomSpace,
    pub(crate) n_macro: usize,
    pub(crate) has_gestural: bool,
    pub(crate) classifiers: MicroClassifiers,
    pub(crate) rules: RuleSet,
    pub(crate) pruner: Option<PruningEngine>,
    pub(crate) stats: HierarchicalStats,
    pub(crate) params: Arc<HdbnParams>,
    pub(crate) nh_log_trans: nh::FlatTable,
    pub(crate) nh_hmm: Hmm,
}

impl CaceEngine {
    /// Trains the full pipeline on labeled sessions.
    ///
    /// # Errors
    /// Propagates classifier, miner, and parameter-construction failures;
    /// rejects an empty training set.
    pub fn train(sessions: &[Session], config: &CaceConfig) -> Result<Self, ModelError> {
        let Some(first) = sessions.first() else {
            return Err(ModelError::InsufficientData {
                what: "engine training".into(),
                available: 0,
                required: 1,
            });
        };
        let n_macro = first.n_activities;
        let has_gestural = first.has_gestural;
        let space = AtomSpace {
            n_macro,
            ..AtomSpace::cace()
        };

        // Context planar.
        let features = extract_all(sessions);
        let classifiers = MicroClassifiers::train(
            sessions,
            &features,
            n_macro,
            config.classifier_stride,
            config.seed,
        )?;

        // Correlation miner.
        let mut rules = if config.strategy.uses_correlation_pruning() {
            let txns = corpus(&space, sessions);
            let mut mined = mine_rules(&txns, &space, &config.apriori);
            // Keep only rules that carry runtime pruning power: current-time
            // macro/location/room consequents, excluding the structural
            // location→room tautologies (a sub-location trivially implies
            // its room). This is the engine-side half of the paper's
            // "redundant (e.g., transitive) rules were subsequently merged".
            let filter_space = space.clone();
            mined.retain_rules(|r| {
                let Some(cons) = filter_space.decode(r.consequent) else {
                    return false;
                };
                if cons.lag != 0 {
                    return false;
                }
                match cons.atom {
                    cace_mining::Atom::Macro(_) => true,
                    cace_mining::Atom::Location(_) => true,
                    cace_mining::Atom::Room(room) => !r.antecedent.iter().any(|&a| {
                        matches!(
                            filter_space.decode(a),
                            Some(item) if item.user == cons.user
                                && item.lag == 0
                                && matches!(item.atom,
                                    cace_mining::Atom::Location(l)
                                        if filter_space.loc_to_room[l as usize]
                                            == room as usize)
                        )
                    }),
                    _ => false,
                }
            });
            // Exclusivities only need each trigger to be nonvacuously
            // frequent; half of minSup keeps short-but-regular activities
            // (bathrooming) in scope.
            let negatives = mine_negative_rules(&txns, &space, config.apriori.min_support * 0.5);
            mined.set_negatives(negatives);
            mined
        } else {
            RuleSet::new(space.clone(), Vec::new())
        };
        if config.use_initial_rules && n_macro == 11 && has_gestural {
            let initial = initial_cace_rules();
            let mut negatives = rules.negatives().to_vec();
            for neg in initial.negatives() {
                if !negatives.contains(neg) {
                    negatives.push(*neg);
                }
            }
            rules.extend_rules(initial.rules().iter().cloned());
            rules.set_negatives(negatives);
        }
        if config.strategy.per_user_rules_only() {
            let filtered: Vec<_> = rules
                .rules()
                .iter()
                .filter(|r| {
                    let users: Vec<u8> = r
                        .antecedent
                        .iter()
                        .chain(std::iter::once(&r.consequent))
                        .filter_map(|&i| space.decode(i))
                        .map(|item| item.user)
                        .collect();
                    users.windows(2).all(|w| w[0] == w[1])
                })
                .cloned()
                .collect();
            // NCR keeps a user's own micro→macro exclusions but loses the
            // cross-user spatial exclusivities.
            let negatives: Vec<_> = rules
                .negatives()
                .iter()
                .filter(
                    |neg| match (space.decode(neg.if_item), space.decode(neg.then_not)) {
                        (Some(a), Some(b)) => a.user == b.user,
                        _ => false,
                    },
                )
                .copied()
                .collect();
            rules = RuleSet::new(space.clone(), filtered);
            rules.set_negatives(negatives);
        }
        let pruner = if config.strategy.uses_correlation_pruning() {
            Some(PruningEngine::new(rules.clone()))
        } else {
            None
        };

        // Constraint miner.
        let miner = ConstraintMiner {
            n_macro,
            ..ConstraintMiner::cace()
        };
        let sequences: Vec<LabeledSequence> = sessions
            .iter()
            .map(|s| {
                let mut seq = LabeledSequence::default();
                for u in 0..2 {
                    seq.macros[u] = s.labels_of(u);
                    seq.posturals[u] = s
                        .ticks
                        .iter()
                        .map(|t| t.truth[u].micro.postural.index())
                        .collect();
                    seq.locations[u] = s
                        .ticks
                        .iter()
                        .map(|t| t.truth[u].micro.location.index())
                        .collect();
                    seq.gesturals[u] = if s.has_gestural {
                        s.ticks
                            .iter()
                            .map(|t| t.truth[u].micro.gestural.index())
                            .collect()
                    } else {
                        Vec::new()
                    };
                }
                seq
            })
            .collect();
        let stats = miner.mine(&sequences)?;

        let hdbn_config = HdbnConfig {
            coupling_weight: if config.strategy.coupled() {
                config.coupling_weight
            } else {
                0.0
            },
            hierarchy_weight: config.hierarchy_weight,
            ..HdbnConfig::default()
        };
        let params = HdbnParams::new(stats.clone(), hdbn_config)?;

        // NH flat transition table + macro HMM.
        let label_seqs: Vec<Vec<usize>> = sessions
            .iter()
            .flat_map(|s| [s.labels_of(0), s.labels_of(1)])
            .collect();
        let nh_hmm = Hmm::fit(&label_seqs, n_macro, 0.5)?;
        let nh_log_trans = {
            let mut table = vec![vec![0.0; n_macro]; n_macro];
            let mut counts = vec![vec![0.5f64; n_macro]; n_macro];
            for seq in &label_seqs {
                for w in seq.windows(2) {
                    counts[w[0]][w[1]] += 1.0;
                }
            }
            for (row, crow) in table.iter_mut().zip(&counts) {
                let total: f64 = crow.iter().sum();
                for (slot, &c) in row.iter_mut().zip(crow) {
                    *slot = (c / total).ln();
                }
            }
            nh::FlatTable::from_rows(&table)
        };

        let mut engine = Self {
            config: config.clone(),
            space,
            n_macro,
            has_gestural,
            classifiers,
            rules,
            pruner,
            stats,
            params: Arc::new(params),
            nh_log_trans,
            nh_hmm,
        };

        // Optional EM refinement over the training tick inputs. The initial
        // tables are lent to EM through the same `Arc` the engine serves
        // from; EM's E-step fans sequences across cores and only the
        // M-step allocates fresh tables.
        if config.run_em && config.strategy.hierarchical() {
            let em_inputs: Vec<Vec<TickInput>> = sessions
                .iter()
                .zip(&features)
                .map(|(s, f)| engine.tick_inputs_unpruned(s, f, config.beam))
                .collect();
            let outcome = hdbn_fit_em_shared(Arc::clone(&engine.params), &em_inputs, &config.em)?;
            engine.params = Arc::new(outcome.params);
        }

        Ok(engine)
    }

    /// The mined rule set (Table IV).
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The trained (possibly EM-refined) HDBN parameters this engine
    /// decodes with — including their dense
    /// [`ScoreTables`](cace_hdbn::ScoreTables).
    pub fn hdbn_params(&self) -> &Arc<HdbnParams> {
        &self.params
    }

    /// The decoder-ready tick inputs this engine's recognition path would
    /// feed its trellis for `session` — pruned with the standard beam for
    /// NCR/C2, unpruned for NCS, unpruned with the NH beam for NH.
    ///
    /// This is the batch pipeline up to (but not including) the decoder,
    /// exposed so differential suites and benches can drive reference
    /// decoders over exactly the engine's state spaces.
    pub fn tick_inputs(&self, session: &Session) -> Vec<TickInput> {
        let features = cace_features::extract_session(session);
        match self.config.strategy {
            Strategy::NaiveHmm => {
                self.tick_inputs_unpruned(session, &features, self.config.nh_beam)
            }
            Strategy::NaiveConstraint => {
                self.tick_inputs_unpruned(session, &features, self.config.beam)
            }
            Strategy::NaiveCorrelation | Strategy::CorrelationConstraint => {
                self.tick_inputs_pruned(session, &features).0
            }
        }
    }

    /// The constraint-mined statistics.
    pub fn stats(&self) -> &HierarchicalStats {
        &self.stats
    }

    /// The atom space in use.
    pub fn space(&self) -> &AtomSpace {
        &self.space
    }

    /// Number of macro activities.
    pub fn n_macro(&self) -> usize {
        self.n_macro
    }

    /// The configuration this engine was trained with (and serves with —
    /// snapshots persist it verbatim, decoder settings included).
    pub fn config(&self) -> &CaceConfig {
        &self.config
    }

    /// A copy of this engine serving with a different decode-time beam.
    ///
    /// The decoder configuration is not trained state — every classifier,
    /// rule, and CPT is shared unchanged (parameters via `Arc`) — so beam
    /// sweeps can reuse one trained engine instead of retraining per
    /// width.
    pub fn with_decoder(&self, decoder: DecoderConfig) -> Self {
        let mut serving = self.clone();
        serving.config.decoder = decoder;
        serving
    }

    /// A copy of this engine serving with different HDBN parameters —
    /// the **adaptation constructor**: the incremental EM loop
    /// re-estimates CPTs from drift windows
    /// ([`cace_hdbn::DriftAccumulator::reestimate`]) and this grafts the
    /// result onto the trained engine. Everything not re-estimated —
    /// classifiers, mined rules, pruning engine, NH baseline tables,
    /// atom space — is shared unchanged, so the new engine drops into a
    /// live fleet exactly like the one it replaces.
    ///
    /// # Errors
    /// [`ModelError::InvalidConfig`] if `params` was built for a
    /// different vocabulary (its dimensions must match this engine's
    /// atom space) or a different decoder configuration.
    pub fn with_params(&self, params: HdbnParams) -> Result<Self, ModelError> {
        let same_dims = params.stats.n_macro == self.space.n_macro
            && params.stats.n_postural == self.space.n_postural
            && params.stats.n_gestural == self.space.n_gestural
            && params.stats.n_location == self.space.n_location;
        if !same_dims {
            return Err(ModelError::InvalidConfig(format!(
                "adapted parameters are over a {}x{}x{}x{} vocabulary, \
                 engine serves {}x{}x{}x{}",
                params.stats.n_macro,
                params.stats.n_postural,
                params.stats.n_gestural,
                params.stats.n_location,
                self.space.n_macro,
                self.space.n_postural,
                self.space.n_gestural,
                self.space.n_location,
            )));
        }
        if params.config != self.params.config {
            return Err(ModelError::InvalidConfig(
                "adapted parameters carry a different HDBN config \
                 (coupling/decoder settings must match the serving engine)"
                    .to_string(),
            ));
        }
        let mut serving = self.clone();
        serving.stats = params.stats.clone();
        serving.params = Arc::new(params);
        Ok(serving)
    }

    /// Upper bound on this engine's per-tick decoder-frontier size — the
    /// yardstick for choosing a [`cace_hdbn::Beam::TopK`] width (see
    /// [`Strategy::frontier_bound`]).
    pub fn frontier_bound(&self) -> usize {
        self.config
            .strategy
            .frontier_bound(self.n_macro, self.config.beam, self.config.nh_beam)
    }

    /// The shared per-tick preparation pipeline, configured for this
    /// engine's strategy. `use_pruner` selects the correlation-pruning
    /// variant (requires a pruning strategy); `beam` is the per-user
    /// micro-candidate cap.
    pub(crate) fn tick_preparer(&self, beam: usize, use_pruner: bool) -> TickPreparer<'_> {
        TickPreparer {
            space: &self.space,
            classifiers: &self.classifiers,
            pruner: if use_pruner {
                Some(self.pruner.as_ref().expect("pruning strategy"))
            } else {
                None
            },
            mask: self.config.mask,
            has_gestural: self.has_gestural,
            beam,
            evidence: self.config.evidence,
        }
    }

    /// The preparer matching this engine's recognition path: pruned with
    /// the standard beam for NCR/C2, unpruned with the NH beam for NH,
    /// unpruned with the standard beam for NCS.
    pub(crate) fn runtime_preparer(&self) -> TickPreparer<'_> {
        match self.config.strategy {
            Strategy::NaiveHmm => self.tick_preparer(self.config.nh_beam, false),
            Strategy::NaiveConstraint => self.tick_preparer(self.config.beam, false),
            Strategy::NaiveCorrelation | Strategy::CorrelationConstraint => {
                self.tick_preparer(self.config.beam, true)
            }
        }
    }

    /// Builds unpruned tick inputs (used by EM, NCS, and — with its larger
    /// beam — NH).
    fn tick_inputs_unpruned(
        &self,
        session: &Session,
        features: &SessionFeatures,
        beam: usize,
    ) -> Vec<TickInput> {
        let preparer = self.tick_preparer(beam, false);
        let mut prev = [PrevState::default(), PrevState::default()];
        (0..session.len())
            .map(|t| {
                preparer
                    .prepare(&session.ticks[t].observed, &features.per_tick[t], &mut prev)
                    .input
            })
            .collect()
    }

    /// Builds pruned tick inputs, returning (inputs, joint sizes, firings).
    fn tick_inputs_pruned(
        &self,
        session: &Session,
        features: &SessionFeatures,
    ) -> (Vec<TickInput>, Vec<u128>, u64) {
        let preparer = self.tick_preparer(self.config.beam, true);
        let mut prev = [PrevState::default(), PrevState::default()];
        let mut inputs = Vec::with_capacity(session.len());
        let mut joint_sizes = Vec::with_capacity(session.len());
        let mut fired = 0u64;
        for t in 0..session.len() {
            let prepared =
                preparer.prepare(&session.ticks[t].observed, &features.per_tick[t], &mut prev);
            fired += prepared.rules_fired;
            joint_sizes.push(prepared.joint_size);
            inputs.push(prepared.input);
        }
        (inputs, joint_sizes, fired)
    }

    /// Runs recognition on one session.
    ///
    /// # Errors
    /// Propagates decoding failures (e.g. emptied state spaces).
    pub fn recognize(&self, session: &Session) -> Result<Recognition, ModelError> {
        let start = Instant::now();
        let features = cace_features::extract_session(session);

        let result = match self.config.strategy {
            Strategy::NaiveHmm => self.recognize_nh(session, &features),
            Strategy::NaiveCorrelation => {
                let (inputs, sizes, fired) = self.tick_inputs_pruned(session, &features);
                let model = SingleHdbn::from_shared(Arc::clone(&self.params))
                    .with_decoder(self.config.decoder);
                let mut states = 0u64;
                let mut ops = 0u64;
                let mut macros: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
                for u in 0..2 {
                    let path = model.viterbi(&inputs, u)?;
                    states += path.states_explored;
                    if self.config.decoder.beam.never_prunes(self.frontier_bound()) {
                        // Historical input-size convention for the exact
                        // decoder: single-chain transition work is |S|² per
                        // tick.
                        ops += inputs
                            .windows(2)
                            .map(|w| {
                                (w[0].joint_states(self.n_macro) as f64).sqrt() as u64
                                    * (w[1].joint_states(self.n_macro) as f64).sqrt() as u64
                            })
                            .sum::<u64>();
                    } else {
                        // Under a beam, report the decoder's own count so
                        // the overhead tables reflect the pruned frontier.
                        ops += path.transition_ops;
                    }
                    macros[u] = path.macros;
                }
                Ok((macros, states, ops, sizes, fired))
            }
            Strategy::NaiveConstraint => {
                let inputs = self.tick_inputs_unpruned(session, &features, self.config.beam);
                let sizes: Vec<u128> = inputs
                    .iter()
                    .map(|i| i.joint_states(self.n_macro) as u128)
                    .collect();
                let model = CoupledHdbn::from_shared(Arc::clone(&self.params))
                    .with_decoder(self.config.decoder);
                let path = model.viterbi(&inputs)?;
                Ok((
                    path.macros,
                    path.states_explored,
                    path.transition_ops,
                    sizes,
                    0,
                ))
            }
            Strategy::CorrelationConstraint => {
                let (inputs, sizes, fired) = self.tick_inputs_pruned(session, &features);
                let model = CoupledHdbn::from_shared(Arc::clone(&self.params))
                    .with_decoder(self.config.decoder);
                let path = model.viterbi(&inputs)?;
                Ok((
                    path.macros,
                    path.states_explored,
                    path.transition_ops,
                    sizes,
                    fired,
                ))
            }
        };
        let (macros, states_explored, transition_ops, joint_sizes, rules_fired) = result?;

        let mean_joint_size = if joint_sizes.is_empty() {
            0.0
        } else {
            joint_sizes.iter().map(|&s| s as f64).sum::<f64>() / joint_sizes.len() as f64
        };
        Ok(Recognition {
            macros,
            states_explored,
            transition_ops,
            wall_seconds: start.elapsed().as_secs_f64(),
            mean_joint_size,
            rules_fired,
        })
    }

    /// NH: exhaustive flat product HMM per user.
    #[allow(clippy::type_complexity)]
    fn recognize_nh(
        &self,
        session: &Session,
        features: &SessionFeatures,
    ) -> Result<([Vec<usize>; 2], u64, u64, Vec<u128>, u64), ModelError> {
        let inputs = self.tick_inputs_unpruned(session, features, self.config.nh_beam);
        let sizes: Vec<u128> = inputs
            .iter()
            .map(|i| i.joint_states(self.n_macro) as u128)
            .collect();
        let preparer = self.tick_preparer(self.config.nh_beam, false);
        // Per-tick macro emissions from the direct classifier.
        let mut all_emissions: Vec<[Vec<f64>; 2]> = (0..session.len())
            .map(|t| preparer.nh_macro_emissions(&features.per_tick[t]))
            .collect();
        let mut macros: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut states = 0u64;
        let mut ops = 0u64;
        for u in 0..2 {
            let emissions: Vec<Vec<f64>> = all_emissions
                .iter_mut()
                .map(|e| std::mem::take(&mut e[u]))
                .collect();
            let (path, s, o) = self.flat_product_viterbi(&inputs, &emissions, u)?;
            states += s;
            ops += o;
            macros[u] = path;
        }
        Ok((macros, states, ops, sizes, 0))
    }

    /// Flat Viterbi over the (macro × micro-beam) product space with no
    /// hierarchical structure — the "all possible states" NH decoder,
    /// driven through the step functions in [`crate::nh`] (shared with the
    /// streaming path). Dispatches on the configured scoring
    /// [`Precision`] like the hierarchical decoders.
    fn flat_product_viterbi(
        &self,
        inputs: &[TickInput],
        macro_emissions: &[Vec<f64>],
        user: usize,
    ) -> Result<(Vec<usize>, u64, u64), ModelError> {
        match self.config.decoder.precision {
            Precision::Exact64 => {
                self.flat_product_viterbi_impl::<f64>(inputs, macro_emissions, user)
            }
            Precision::Fast32 => {
                self.flat_product_viterbi_impl::<f32>(inputs, macro_emissions, user)
            }
        }
    }

    fn flat_product_viterbi_impl<S: nh::NhScalar>(
        &self,
        inputs: &[TickInput],
        macro_emissions: &[Vec<f64>],
        user: usize,
    ) -> Result<(Vec<usize>, u64, u64), ModelError> {
        if inputs.is_empty() {
            return Err(ModelError::InsufficientData {
                what: "NH decoding".into(),
                available: 0,
                required: 1,
            });
        }
        let n = self.n_macro;

        let model = nh::FlatModel {
            table: &self.nh_log_trans,
        };
        let mut all_states = vec![nh::states(&inputs[0], user, n)];
        let mut all_emit = vec![nh::emissions(
            &inputs[0],
            user,
            &all_states[0],
            &macro_emissions[0],
        )];
        let mut v: Vec<S> = Vec::new();
        trellis::init_into(
            &model,
            &nh::FlatView::new(&all_states[0], &all_emit[0], n),
            &mut v,
        );
        let mut states_explored = all_states[0].len() as u64;
        let mut transition_ops = 0u64;
        let mut backptrs: Vec<Vec<u32>> = vec![Vec::new()];
        let mut step: StepScratch<S> = StepScratch::default();

        let beam = self.config.decoder.beam;
        let mut scratch = BeamScratch::new();
        let mut pruned = beam.select_log(&v, &mut scratch);

        for t in 1..inputs.len() {
            let cur = nh::states(&inputs[t], user, n);
            let emit = nh::emissions(&inputs[t], user, &cur, &macro_emissions[t]);
            let prev = all_states.last().expect("nonempty");
            let prev_emit = all_emit.last().expect("nonempty");
            states_explored += cur.len() as u64;
            let mut back = Vec::new();
            let pv = nh::FlatView::new(prev, prev_emit, n);
            let cv = nh::FlatView::new(&cur, &emit, n);
            if pruned {
                transition_ops += (cur.len() * scratch.keep().len()) as u64;
                trellis::step_pruned_into(
                    &model,
                    &pv,
                    &v,
                    scratch.keep(),
                    &cv,
                    &mut step,
                    &mut back,
                );
            } else {
                transition_ops += (cur.len() * prev.len()) as u64;
                trellis::step_dense_into(&model, &pv, &v, &cv, &mut step, &mut back);
            }
            step.swap_frontier(&mut v);
            pruned = beam.select_log(&v, &mut scratch);
            backptrs.push(back);
            all_states.push(cur);
            all_emit.push(emit);
        }

        let mut j = trellis::argmax(&v).0;
        let mut path = vec![0usize; inputs.len()];
        for t in (0..inputs.len()).rev() {
            path[t] = all_states[t][j].0;
            if t > 0 {
                j = backptrs[t][j] as usize;
            }
        }
        let _ = &self.nh_hmm; // macro-only fallback kept for API completeness
        Ok((path, states_explored, transition_ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cace_behavior::{
        cace_grammar, generate_cace_dataset, session::train_test_split, SessionConfig,
    };
    use cace_mining::CandidateTick;

    fn dataset(n: usize, ticks: usize, seed: u64) -> Vec<Session> {
        let g = cace_grammar();
        generate_cace_dataset(&g, 1, n, &SessionConfig::tiny().with_ticks(ticks), seed)
    }

    #[test]
    fn c2_engine_trains_and_recognizes_well() {
        let sessions = dataset(4, 150, 11);
        let (train, test) = train_test_split(sessions, 0.75);
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        assert!(!engine.rules().is_empty(), "rules should be mined");
        let rec = engine.recognize(&test[0]).unwrap();
        let acc = rec.accuracy(&test[0]);
        assert!(acc > 0.5, "C2 accuracy too low: {acc}");
        assert!(rec.rules_fired > 0, "pruning should fire rules");
        assert!(rec.mean_joint_size < CandidateTick::full(engine.space()).joint_size() as f64);
    }

    #[test]
    fn strategies_all_run() {
        let sessions = dataset(3, 100, 12);
        let (train, test) = train_test_split(sessions, 0.67);
        for strategy in Strategy::ALL {
            let cfg = CaceConfig::default().with_strategy(strategy);
            let engine = CaceEngine::train(&train, &cfg).unwrap();
            let rec = engine.recognize(&test[0]).unwrap();
            assert_eq!(rec.macros[0].len(), test[0].len(), "{strategy}");
            assert!(rec.wall_seconds >= 0.0);
        }
    }

    #[test]
    fn c2_explores_fewer_states_than_ncs() {
        let sessions = dataset(3, 120, 13);
        let (train, test) = train_test_split(sessions, 0.67);
        let ncs = CaceEngine::train(
            &train,
            &CaceConfig::default().with_strategy(Strategy::NaiveConstraint),
        )
        .unwrap();
        let c2 = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let rec_ncs = ncs.recognize(&test[0]).unwrap();
        let rec_c2 = c2.recognize(&test[0]).unwrap();
        assert!(
            rec_c2.transition_ops * 2 < rec_ncs.transition_ops,
            "C2 ops {} vs NCS ops {}",
            rec_c2.transition_ops,
            rec_ncs.transition_ops
        );
    }

    #[test]
    fn beamed_decoder_cuts_transition_work_without_losing_the_session() {
        let sessions = dataset(4, 150, 11);
        let (train, test) = train_test_split(sessions, 0.75);
        let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
        let exact = engine.recognize(&test[0]).unwrap();
        // Same trained model, beamed frontier: decode-time state only.
        let beamed_engine = engine.with_decoder(DecoderConfig::top_k(32));
        let beamed = beamed_engine.recognize(&test[0]).unwrap();
        assert!(
            beamed.transition_ops * 2 < exact.transition_ops,
            "TopK(32) ops {} should be well under exact {}",
            beamed.transition_ops,
            exact.transition_ops
        );
        let (acc_b, acc_e) = (beamed.accuracy(&test[0]), exact.accuracy(&test[0]));
        assert!(
            acc_b >= acc_e - 0.05,
            "beamed accuracy {acc_b} fell too far below exact {acc_e}"
        );
    }

    #[test]
    fn empty_training_set_is_rejected() {
        assert!(matches!(
            CaceEngine::train(&[], &CaceConfig::default()),
            Err(ModelError::InsufficientData { .. })
        ));
    }
}
