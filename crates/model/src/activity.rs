//! Macro (complex) activities and the two micro-activity modalities.
//!
//! The vocabulary mirrors Table III of the paper: eleven macro activities of
//! daily living, five oral-gestural micro states sensed by the neck-worn
//! SensorTag, and six postural micro states sensed by the pocket smartphone
//! (the paper lists five named postures and additionally uses `running` in
//! its correlation examples, e.g. *(running, livingroom) ⇒ jogging*).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Implements the common closed-vocabulary surface for a fieldless enum:
/// `COUNT`, `ALL`, `index`, `from_index` and `Display`.
macro_rules! vocabulary {
    (
        $(#[$meta:meta])*
        $name:ident {
            $( $(#[$vmeta:meta])* $variant:ident => $label:expr ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub enum $name {
            $( $(#[$vmeta])* $variant, )+
        }

        impl $name {
            /// Number of variants in the vocabulary.
            pub const COUNT: usize = [$(Self::$variant),+].len();

            /// Every variant, in index order.
            pub const ALL: [Self; Self::COUNT] = [$(Self::$variant),+];

            /// Dense index of this variant, in `0..Self::COUNT`.
            #[inline]
            pub const fn index(self) -> usize {
                self as usize
            }

            /// Inverse of [`index`](Self::index); `None` when out of range.
            #[inline]
            pub fn from_index(index: usize) -> Option<Self> {
                Self::ALL.get(index).copied()
            }

            /// Human-readable label as used in the paper.
            pub const fn label(self) -> &'static str {
                match self {
                    $(Self::$variant => $label,)+
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.label())
            }
        }
    };
}

pub(crate) use vocabulary;

vocabulary! {
    /// The eleven macro (complex) activities of daily living from Table III.
    ///
    /// `Random` absorbs everything that is not one of the ten scripted
    /// activities, including interleaved transition periods, exactly as in
    /// the paper's data-collection methodology.
    MacroActivity {
        /// 1) Exercising — on the exercise bike (SR1).
        Exercising => "Exercising",
        /// 2) Prepare Clothes — at the closets (SR6/SR8).
        PrepareClothes => "Prepare Clothes",
        /// 3) Dining — at the dining table (SR4), usually shared.
        Dining => "Dining",
        /// 4) Watching TV — on the couches (SR2/SR3).
        WatchingTv => "Watching TV",
        /// 5) Prepare Food — kitchen work without the stove.
        PrepareFood => "Prepare Food",
        /// 6) Studying — at the reading table (SR7).
        Studying => "Studying",
        /// 7) Sleeping — in bed (SR5).
        Sleeping => "Sleeping",
        /// 8) Bathrooming — bathroom occupancy (SR9), exclusive.
        Bathrooming => "Bathrooming",
        /// 9) Cooking — kitchen work at the stove (SR10).
        Cooking => "Cooking",
        /// 10) Past Times — leisure, often shared (porch, couches).
        PastTimes => "Past Times",
        /// 11) Random — unscripted or interleaved transition activity.
        Random => "Random",
    }
}

vocabulary! {
    /// Oral-gestural micro activities sensed by the neck-worn SensorTag.
    Gestural {
        /// No oral activity.
        Silent => "silent",
        /// Conversation.
        Talking => "talking",
        /// Chewing / eating gestures.
        Eating => "eating",
        /// Yawning.
        Yawning => "yawning",
        /// Laughing.
        Laughing => "laughing",
    }
}

vocabulary! {
    /// Postural micro activities sensed by the pocket smartphone IMU.
    Postural {
        /// Walking.
        Walking => "walking",
        /// Standing.
        Standing => "standing",
        /// Sitting.
        Sitting => "sitting",
        /// Pedaling the exercise bike.
        Cycling => "cycling",
        /// Lying down.
        Lying => "lying",
        /// Running / jogging in place.
        Running => "running",
    }
}

impl MacroActivity {
    /// Activities the paper observes as *shared* between the two residents
    /// (sleeping, dining, past times); CACE reports ≈99.7 % accuracy on them.
    pub const fn is_typically_shared(self) -> bool {
        matches!(self, Self::Sleeping | Self::Dining | Self::PastTimes)
    }

    /// One-based paper numbering (Table III / Fig 10).
    pub const fn paper_number(self) -> usize {
        self.index() + 1
    }
}

impl Postural {
    /// Whether the posture involves gross body movement (drives PIR firing).
    pub const fn is_moving(self) -> bool {
        matches!(self, Self::Walking | Self::Cycling | Self::Running)
    }

    /// Postures that may directly follow `self` within one frame.
    ///
    /// Encodes the paper's intra-user correlation example: from `sitting` a
    /// user cannot be `walking` in the next instant without an intervening
    /// `standing`, and from `lying` one must pass through `sitting`.
    pub fn feasible_successors(self) -> &'static [Postural] {
        use Postural::*;
        match self {
            Walking => &[Walking, Standing, Running],
            Standing => &[Standing, Walking, Sitting, Running],
            Sitting => &[Sitting, Standing, Lying, Cycling],
            Cycling => &[Cycling, Sitting],
            Lying => &[Lying, Sitting],
            Running => &[Running, Walking, Standing],
        }
    }

    /// Whether `next` may directly follow `self`.
    pub fn can_transition_to(self, next: Postural) -> bool {
        self.feasible_successors().contains(&next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_count_matches_paper() {
        assert_eq!(MacroActivity::COUNT, 11);
        assert_eq!(Gestural::COUNT, 5);
        assert_eq!(Postural::COUNT, 6);
    }

    #[test]
    fn index_roundtrip() {
        for a in MacroActivity::ALL {
            assert_eq!(MacroActivity::from_index(a.index()), Some(a));
        }
        for g in Gestural::ALL {
            assert_eq!(Gestural::from_index(g.index()), Some(g));
        }
        for p in Postural::ALL {
            assert_eq!(Postural::from_index(p.index()), Some(p));
        }
        assert_eq!(MacroActivity::from_index(MacroActivity::COUNT), None);
    }

    #[test]
    fn paper_numbering_is_one_based() {
        assert_eq!(MacroActivity::Exercising.paper_number(), 1);
        assert_eq!(MacroActivity::Random.paper_number(), 11);
    }

    #[test]
    fn postural_transitions_require_intermediates() {
        assert!(!Postural::Sitting.can_transition_to(Postural::Walking));
        assert!(Postural::Sitting.can_transition_to(Postural::Standing));
        assert!(Postural::Standing.can_transition_to(Postural::Walking));
        assert!(!Postural::Lying.can_transition_to(Postural::Standing));
        assert!(Postural::Lying.can_transition_to(Postural::Sitting));
    }

    #[test]
    fn every_posture_can_self_loop() {
        for p in Postural::ALL {
            assert!(p.can_transition_to(p), "{p} must be able to persist");
        }
    }

    #[test]
    fn shared_activities() {
        assert!(MacroActivity::Dining.is_typically_shared());
        assert!(MacroActivity::Sleeping.is_typically_shared());
        assert!(!MacroActivity::Cooking.is_typically_shared());
    }

    #[test]
    fn labels_are_nonempty_and_stable() {
        assert_eq!(MacroActivity::WatchingTv.to_string(), "Watching TV");
        assert_eq!(Gestural::Silent.to_string(), "silent");
        assert_eq!(Postural::Cycling.to_string(), "cycling");
        for a in MacroActivity::ALL {
            assert!(!a.label().is_empty());
        }
    }
}
