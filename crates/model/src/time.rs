//! Discrete time: sample rates, tick indices, spans, and durations.
//!
//! The sensing substrate samples IMUs at 50 Hz (the paper's rate); the
//! context planar aggregates samples into 1.5 s frames with 50 % overlap; the
//! hierarchical models operate on the resulting frame-level tick sequence.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Sampling rate in Hertz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SampleRate(pub u32);

impl SampleRate {
    /// The paper's IMU sampling rate (smartphone and SensorTag).
    pub const IMU: SampleRate = SampleRate(50);

    /// Seconds between consecutive samples.
    pub fn period_secs(self) -> f64 {
        1.0 / f64::from(self.0)
    }

    /// Number of samples spanning `secs` seconds (rounded down).
    pub fn samples_in(self, secs: f64) -> usize {
        (secs * f64::from(self.0)).floor() as usize
    }
}

impl fmt::Display for SampleRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Hz", self.0)
    }
}

/// Index of a model-level time step (one 0.75 s frame hop in the default
/// configuration).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TickIndex(pub usize);

impl TickIndex {
    /// The first tick of a trace.
    pub const ZERO: TickIndex = TickIndex(0);

    /// The next tick.
    pub const fn next(self) -> TickIndex {
        TickIndex(self.0 + 1)
    }

    /// The previous tick, or `None` at the start of the trace.
    pub const fn prev(self) -> Option<TickIndex> {
        match self.0 {
            0 => None,
            n => Some(TickIndex(n - 1)),
        }
    }
}

impl fmt::Display for TickIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl Add<usize> for TickIndex {
    type Output = TickIndex;
    fn add(self, rhs: usize) -> TickIndex {
        TickIndex(self.0 + rhs)
    }
}

impl Sub for TickIndex {
    type Output = usize;
    fn sub(self, rhs: TickIndex) -> usize {
        self.0.saturating_sub(rhs.0)
    }
}

/// A half-open span of ticks `[start, end)`, e.g. the extent of one macro
/// activity episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimeSpan {
    /// First tick of the span (inclusive).
    pub start: TickIndex,
    /// One past the last tick of the span (exclusive).
    pub end: TickIndex,
}

impl TimeSpan {
    /// Creates a span; `start` and `end` may be equal (empty span).
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: TickIndex, end: TickIndex) -> Self {
        assert!(end >= start, "span end {end} precedes start {start}");
        Self { start, end }
    }

    /// Number of ticks covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no ticks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the tick lies inside the span.
    pub fn contains(&self, t: TickIndex) -> bool {
        t >= self.start && t < self.end
    }

    /// Number of ticks shared with another span.
    pub fn overlap(&self, other: &TimeSpan) -> usize {
        let start = self.start.0.max(other.start.0);
        let end = self.end.0.min(other.end.0);
        end.saturating_sub(start)
    }

    /// The paper's start/end *duration error* between a true span and a
    /// predicted span: `(|start delay| + |end shift|) / true length`
    /// (§VII-G's cooking example: 5 min late start + 4 min early end over a
    /// 30 min activity = 30 %).
    pub fn duration_error(&self, predicted: &TimeSpan) -> f64 {
        if self.is_empty() {
            return if predicted.is_empty() { 0.0 } else { 1.0 };
        }
        let start_err = self.start.0.abs_diff(predicted.start.0);
        let end_err = self.end.0.abs_diff(predicted.end.0);
        (start_err + end_err) as f64 / self.len() as f64
    }

    /// Iterates over the ticks in the span.
    pub fn iter(&self) -> impl Iterator<Item = TickIndex> {
        (self.start.0..self.end.0).map(TickIndex)
    }
}

impl fmt::Display for TimeSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Wall-clock-style duration measured in ticks, convertible to seconds given
/// the frame hop.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration {
    ticks: usize,
}

impl Duration {
    /// A duration of `ticks` model steps.
    pub const fn from_ticks(ticks: usize) -> Self {
        Self { ticks }
    }

    /// Number of model steps.
    pub const fn ticks(self) -> usize {
        self.ticks
    }

    /// Seconds, given a per-tick hop (the default pipeline hop is 0.75 s:
    /// 1.5 s frames with 50 % overlap).
    pub fn secs(self, hop_secs: f64) -> f64 {
        self.ticks as f64 * hop_secs
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_ticks(self.ticks + rhs.ticks)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_rate_math() {
        assert_eq!(SampleRate::IMU.period_secs(), 0.02);
        assert_eq!(SampleRate::IMU.samples_in(1.5), 75);
        assert_eq!(SampleRate(100).samples_in(0.5), 50);
    }

    #[test]
    fn tick_arithmetic() {
        let t = TickIndex(5);
        assert_eq!(t.next(), TickIndex(6));
        assert_eq!(t.prev(), Some(TickIndex(4)));
        assert_eq!(TickIndex::ZERO.prev(), None);
        assert_eq!(t + 3, TickIndex(8));
        assert_eq!(TickIndex(8) - t, 3);
    }

    #[test]
    fn span_basics() {
        let s = TimeSpan::new(TickIndex(10), TickIndex(40));
        assert_eq!(s.len(), 30);
        assert!(s.contains(TickIndex(10)));
        assert!(s.contains(TickIndex(39)));
        assert!(!s.contains(TickIndex(40)));
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 30);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn span_rejects_reversed_bounds() {
        TimeSpan::new(TickIndex(5), TickIndex(4));
    }

    #[test]
    fn span_overlap() {
        let a = TimeSpan::new(TickIndex(0), TickIndex(10));
        let b = TimeSpan::new(TickIndex(5), TickIndex(15));
        let c = TimeSpan::new(TickIndex(20), TickIndex(25));
        assert_eq!(a.overlap(&b), 5);
        assert_eq!(b.overlap(&a), 5);
        assert_eq!(a.overlap(&c), 0);
    }

    #[test]
    fn paper_duration_error_example() {
        // Cooking: true 10:05–10:35 (30 min), predicted 10:10–10:39.
        // Error = (5 + 4) / 30 = 30 %.
        let truth = TimeSpan::new(TickIndex(5), TickIndex(35));
        let predicted = TimeSpan::new(TickIndex(10), TickIndex(39));
        let err = truth.duration_error(&predicted);
        assert!((err - 0.3).abs() < 1e-12, "expected 0.3, got {err}");
    }

    #[test]
    fn duration_error_of_exact_match_is_zero() {
        let s = TimeSpan::new(TickIndex(3), TickIndex(9));
        assert_eq!(s.duration_error(&s), 0.0);
    }

    #[test]
    fn duration_conversion() {
        let d = Duration::from_ticks(4);
        assert!((d.secs(0.75) - 3.0).abs() < 1e-12);
        assert_eq!((d + Duration::from_ticks(2)).ticks(), 6);
    }
}
