//! # cace-model
//!
//! Domain vocabulary shared by every crate in the CACE workspace.
//!
//! CACE (Constraints And Correlations mining Engine) recognizes *macro*
//! (complex) activities of multiple inhabitants in a smart home from three
//! micro-context modalities: postural activity, oral-gestural activity, and
//! sub-location. This crate defines the closed vocabularies used throughout
//! the system — the eleven macro activities of Table III in the paper, the
//! postural and gestural micro states, the fourteen sub-locations SR1–SR14 of
//! the PogoPlug testbed, the rooms they belong to, and the composite context
//! tuples that the hierarchical models reason over.
//!
//! All vocabulary enums follow the same pattern: a `COUNT` constant, an `ALL`
//! array for iteration, an `index`/`from_index` pair for dense table lookups,
//! and `Display` labels matching the paper.
//!
//! ```
//! use cace_model::{MacroActivity, MicroState, Postural, Gestural, SubLocation};
//!
//! let micro = MicroState::new(Postural::Sitting, Gestural::Silent, SubLocation::Couch1);
//! assert_eq!(MicroState::from_index(micro.index()), Some(micro));
//! assert_eq!(MacroActivity::ALL.len(), MacroActivity::COUNT);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod casas;
pub mod context;
pub mod error;
pub mod location;
pub mod state_space;
pub mod time;
pub mod user;

pub use activity::{Gestural, MacroActivity, Postural};
pub use casas::CasasActivity;
pub use context::{ContextAtom, JointState, MacroState, MicroState, UserContext};
pub use error::ModelError;
pub use location::{Room, SubLocation};
pub use state_space::{JointStateSpace, MicroStateSpace, StateMask};
pub use time::{Duration, SampleRate, TickIndex, TimeSpan};
pub use user::{Household, UserId};
