//! State-space containers: per-user candidate sets and joint-space sizing.
//!
//! "State space explosion" is the paper's central computational challenge:
//! with two users the coupled model's joint space at each tick is the product
//! of both users' macro and micro candidate sets. The correlation miner
//! shrinks the per-user candidate sets; this module provides the containers
//! those prunes operate on, implemented as fixed-size bitsets for cheap
//! intersection and counting.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{MacroActivity, MicroState, SubLocation};

/// Which micro-context modalities are available to the recognizer.
///
/// Fig 8(a) of the paper ablates the gestural and sub-location modalities;
/// the CASAS dataset lacks the gestural modality entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StateMask {
    /// Oral-gestural stream (neck SensorTag) available.
    pub gestural: bool,
    /// Sub-location stream (ambient PIR + iBeacons) available.
    pub location: bool,
}

impl StateMask {
    /// All modalities present (the full CACE configuration).
    pub const FULL: StateMask = StateMask {
        gestural: true,
        location: true,
    };
    /// Gestural stream removed (Fig 8(a) "Without Gestural"; also CASAS).
    pub const NO_GESTURAL: StateMask = StateMask {
        gestural: false,
        location: true,
    };
    /// Sub-location stream removed (Fig 8(a) "Without SubLocation").
    pub const NO_LOCATION: StateMask = StateMask {
        gestural: true,
        location: false,
    };
}

impl Default for StateMask {
    fn default() -> Self {
        Self::FULL
    }
}

impl fmt::Display for StateMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.gestural, self.location) {
            (true, true) => f.write_str("full"),
            (false, true) => f.write_str("without-gestural"),
            (true, false) => f.write_str("without-sublocation"),
            (false, false) => f.write_str("postural-only"),
        }
    }
}

const MICRO_WORDS: usize = MicroState::COUNT.div_ceil(64);

/// A set of candidate [`MicroState`]s for one user at one tick, stored as a
/// 420-bit set.
///
/// # Examples
/// ```
/// use cace_model::{MicroStateSpace, MicroState};
/// let mut space = MicroStateSpace::full();
/// assert_eq!(space.len(), MicroState::COUNT);
/// space.retain(|m| m.location == cace_model::SubLocation::Kitchen);
/// assert_eq!(space.len(), 30); // 6 postures × 5 gestures
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MicroStateSpace {
    words: [u64; MICRO_WORDS],
}

impl MicroStateSpace {
    /// The empty candidate set.
    pub const fn empty() -> Self {
        Self {
            words: [0; MICRO_WORDS],
        }
    }

    /// Every micro state is a candidate.
    pub fn full() -> Self {
        let mut s = Self::empty();
        for i in 0..MicroState::COUNT {
            s.insert_index(i);
        }
        s
    }

    /// Builds a space from an iterator of candidates.
    pub fn from_states<I: IntoIterator<Item = MicroState>>(states: I) -> Self {
        let mut s = Self::empty();
        for m in states {
            s.insert(m);
        }
        s
    }

    #[inline]
    fn insert_index(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Adds a candidate.
    #[inline]
    pub fn insert(&mut self, m: MicroState) {
        self.insert_index(m.index());
    }

    /// Removes a candidate; returns whether it was present.
    pub fn remove(&mut self, m: MicroState) -> bool {
        let i = m.index();
        let was = self.contains(m);
        self.words[i / 64] &= !(1 << (i % 64));
        was
    }

    /// Whether the state is a candidate.
    #[inline]
    pub fn contains(&self, m: MicroState) -> bool {
        let i = m.index();
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty (pruning removed everything — an error
    /// condition the engine must relax).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Keeps only candidates satisfying the predicate.
    pub fn retain<F: FnMut(MicroState) -> bool>(&mut self, mut keep: F) {
        for m in Self::full().iter() {
            if self.contains(m) && !keep(m) {
                self.remove(m);
            }
        }
    }

    /// In-place intersection with another candidate set.
    pub fn intersect(&mut self, other: &MicroStateSpace) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
        }
    }

    /// In-place union with another candidate set.
    pub fn union(&mut self, other: &MicroStateSpace) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
        }
    }

    /// Iterates over the candidates in index order.
    pub fn iter(&self) -> impl Iterator<Item = MicroState> + '_ {
        (0..MicroState::COUNT)
            .filter(move |&i| self.words[i / 64] & (1 << (i % 64)) != 0)
            .map(|i| MicroState::from_index(i).expect("index in range"))
    }

    /// Candidates restricted to one sub-location.
    pub fn at_location(location: SubLocation) -> Self {
        Self::from_states(MicroState::all().filter(|m| m.location == location))
    }
}

impl fmt::Debug for MicroStateSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MicroStateSpace({} states)", self.len())
    }
}

impl Default for MicroStateSpace {
    fn default() -> Self {
        Self::full()
    }
}

impl FromIterator<MicroState> for MicroStateSpace {
    fn from_iter<I: IntoIterator<Item = MicroState>>(iter: I) -> Self {
        Self::from_states(iter)
    }
}

impl Extend<MicroState> for MicroStateSpace {
    fn extend<I: IntoIterator<Item = MicroState>>(&mut self, iter: I) {
        for m in iter {
            self.insert(m);
        }
    }
}

/// Macro-activity candidate set, an 11-bit mask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MacroSet(u16);

impl MacroSet {
    /// The empty set.
    pub const EMPTY: MacroSet = MacroSet(0);

    /// Every macro activity.
    pub fn full() -> Self {
        MacroSet((1 << MacroActivity::COUNT) - 1)
    }

    /// Adds an activity.
    pub fn insert(&mut self, a: MacroActivity) {
        self.0 |= 1 << a.index();
    }

    /// Removes an activity; returns whether it was present.
    pub fn remove(&mut self, a: MacroActivity) -> bool {
        let was = self.contains(a);
        self.0 &= !(1 << a.index());
        was
    }

    /// Membership test.
    pub fn contains(&self, a: MacroActivity) -> bool {
        self.0 & (1 << a.index()) != 0
    }

    /// Number of candidate activities.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no activity remains.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// In-place intersection.
    pub fn intersect(&mut self, other: MacroSet) {
        self.0 &= other.0;
    }

    /// Iterates over candidates in index order.
    pub fn iter(&self) -> impl Iterator<Item = MacroActivity> + '_ {
        let bits = self.0;
        MacroActivity::ALL
            .into_iter()
            .filter(move |a| bits & (1 << a.index()) != 0)
    }
}

impl fmt::Debug for MacroSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Default for MacroSet {
    fn default() -> Self {
        Self::full()
    }
}

impl FromIterator<MacroActivity> for MacroSet {
    fn from_iter<I: IntoIterator<Item = MacroActivity>>(iter: I) -> Self {
        let mut s = Self::EMPTY;
        for a in iter {
            s.insert(a);
        }
        s
    }
}

/// The joint candidate space for both users at one tick: the Cartesian
/// product of per-user macro and micro candidate sets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointStateSpace {
    /// Micro candidates per user.
    pub micro: [MicroStateSpace; 2],
    /// Macro candidates per user.
    pub macros: [MacroSet; 2],
}

impl JointStateSpace {
    /// The completely unpruned joint space.
    pub fn full() -> Self {
        Self {
            micro: [MicroStateSpace::full(), MicroStateSpace::full()],
            macros: [MacroSet::full(), MacroSet::full()],
        }
    }

    /// Size of the joint space: `∏_user |macro| · |micro|`.
    ///
    /// This is the quantity the correlation miner reduces by more than an
    /// order of magnitude (the paper's 16-fold overhead claim scales with
    /// this product).
    pub fn joint_size(&self) -> u128 {
        self.micro
            .iter()
            .zip(self.macros.iter())
            .map(|(mi, ma)| mi.len() as u128 * ma.len() as u128)
            .product()
    }

    /// Whether any user's candidate set became empty.
    pub fn any_empty(&self) -> bool {
        self.micro.iter().any(MicroStateSpace::is_empty)
            || self.macros.iter().any(MacroSet::is_empty)
    }
}

impl Default for JointStateSpace {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gestural, Postural};

    #[test]
    fn full_micro_space_has_all_states() {
        let s = MicroStateSpace::full();
        assert_eq!(s.len(), 420);
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 420);
    }

    #[test]
    fn insert_remove_contains() {
        let m = MicroState::new(Postural::Sitting, Gestural::Silent, SubLocation::Couch1);
        let mut s = MicroStateSpace::empty();
        assert!(!s.contains(m));
        s.insert(m);
        assert!(s.contains(m));
        assert_eq!(s.len(), 1);
        assert!(s.remove(m));
        assert!(!s.remove(m));
        assert!(s.is_empty());
    }

    #[test]
    fn retain_by_location() {
        let mut s = MicroStateSpace::full();
        s.retain(|m| m.location == SubLocation::Kitchen);
        assert_eq!(s.len(), Postural::COUNT * Gestural::COUNT);
        assert!(s.iter().all(|m| m.location == SubLocation::Kitchen));
    }

    #[test]
    fn intersection_and_union() {
        let kitchen = MicroStateSpace::at_location(SubLocation::Kitchen);
        let porch = MicroStateSpace::at_location(SubLocation::Porch);
        let mut both = kitchen.clone();
        both.union(&porch);
        assert_eq!(both.len(), 60);
        let mut none = kitchen.clone();
        none.intersect(&porch);
        assert!(none.is_empty());
        let mut same = kitchen.clone();
        same.intersect(&kitchen);
        assert_eq!(same, kitchen);
    }

    #[test]
    fn macro_set_operations() {
        let mut s = MacroSet::full();
        assert_eq!(s.len(), 11);
        assert!(s.remove(MacroActivity::Cooking));
        assert!(!s.contains(MacroActivity::Cooking));
        assert_eq!(s.len(), 10);
        s.insert(MacroActivity::Cooking);
        assert_eq!(s.len(), 11);
        let dining_only: MacroSet = [MacroActivity::Dining].into_iter().collect();
        s.intersect(dining_only);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![MacroActivity::Dining]);
    }

    #[test]
    fn joint_size_is_product() {
        let full = JointStateSpace::full();
        let per_user = 420u128 * 11;
        assert_eq!(full.joint_size(), per_user * per_user);

        let mut pruned = full.clone();
        pruned.micro[0] = MicroStateSpace::at_location(SubLocation::Kitchen);
        pruned.macros[0] = [MacroActivity::Cooking].into_iter().collect();
        assert_eq!(pruned.joint_size(), 30 * per_user);
        assert!(!pruned.any_empty());
    }

    #[test]
    fn empty_detection() {
        let mut s = JointStateSpace::full();
        s.macros[1] = MacroSet::EMPTY;
        assert!(s.any_empty());
        assert_eq!(s.joint_size(), 0);
    }

    #[test]
    fn state_mask_labels() {
        assert_eq!(StateMask::FULL.to_string(), "full");
        assert_eq!(StateMask::NO_GESTURAL.to_string(), "without-gestural");
        assert_eq!(StateMask::NO_LOCATION.to_string(), "without-sublocation");
        assert_eq!(StateMask::default(), StateMask::FULL);
    }
}
