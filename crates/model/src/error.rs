//! Error type shared by the workspace crates.

use std::error::Error;
use std::fmt;

/// Errors surfaced by CACE model construction and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A dense index was outside its vocabulary range.
    IndexOutOfRange {
        /// What was being indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The vocabulary size.
        count: usize,
    },
    /// A probability table failed validation (e.g. a row does not sum to 1).
    InvalidDistribution {
        /// Which table or row failed.
        what: String,
        /// The offending mass.
        mass: f64,
    },
    /// An operation needed training data that was empty or too small.
    InsufficientData {
        /// What the data was needed for.
        what: String,
        /// How many items were available.
        available: usize,
        /// How many were required.
        required: usize,
    },
    /// Observation/label sequences disagree in length.
    LengthMismatch {
        /// Description of the two sequences.
        what: String,
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// The pruning engine removed every candidate state at some tick, so
    /// inference cannot proceed without relaxation.
    EmptyStateSpace {
        /// The tick at which all candidates were pruned.
        tick: usize,
    },
    /// A model was used before being trained.
    NotTrained {
        /// The model that was not trained.
        what: &'static str,
    },
    /// Configuration is inconsistent (bad thresholds, zero sizes, …).
    InvalidConfig(String),
    /// A model snapshot could not be written, read, or verified (I/O
    /// failure, header/version mismatch, checksum mismatch, or a
    /// malformed payload).
    Persistence {
        /// What failed, including the underlying cause.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IndexOutOfRange { what, index, count } => {
                write!(f, "index {index} out of range for {what} (size {count})")
            }
            Self::InvalidDistribution { what, mass } => {
                write!(
                    f,
                    "invalid probability distribution for {what}: mass {mass}"
                )
            }
            Self::InsufficientData {
                what,
                available,
                required,
            } => write!(
                f,
                "insufficient data for {what}: {available} available, {required} required"
            ),
            Self::LengthMismatch { what, left, right } => {
                write!(f, "length mismatch for {what}: {left} vs {right}")
            }
            Self::EmptyStateSpace { tick } => {
                write!(f, "state space empty at tick {tick} after pruning")
            }
            Self::NotTrained { what } => write!(f, "{what} used before training"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Persistence { what } => write!(f, "model persistence failed: {what}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_and_informative() {
        let e = ModelError::IndexOutOfRange {
            what: "MacroActivity",
            index: 12,
            count: 11,
        };
        assert_eq!(
            e.to_string(),
            "index 12 out of range for MacroActivity (size 11)"
        );
        let e = ModelError::EmptyStateSpace { tick: 7 };
        assert!(e.to_string().contains("tick 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
