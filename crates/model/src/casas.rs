//! CASAS-style multi-resident activity vocabulary.
//!
//! The paper's second evaluation (Fig 9) uses the CASAS multi-resident ADL
//! dataset of Singla et al. \[9\]: 26 resident pairs performing fifteen
//! scripted activities, several of them *joint* (performed by both residents
//! together, e.g. moving furniture or playing checkers). The dataset exposes
//! only ambient motion sensors — no gestural modality.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::activity::vocabulary;

vocabulary! {
    /// The fifteen CASAS multi-resident activities (Fig 9 rows 1–15).
    CasasActivity {
        /// 1 — Fill medication dispenser (resident A).
        FillMedicationDispenser => "Fill Medication Dispenser",
        /// 2 — Hang up clothes (resident B).
        HangUpClothes => "Hang Up Clothes",
        /// 3 — Move furniture (joint).
        MoveFurniture => "Move Furniture",
        /// 4 — Read magazine (resident A).
        ReadMagazine => "Read Magazine",
        /// 5 — Water plants (resident B).
        WaterPlants => "Water Plants",
        /// 6 — Sweep floor (resident A).
        SweepFloor => "Sweep Floor",
        /// 7 — Play checkers (joint).
        PlayCheckers => "Play Checkers",
        /// 8 — Set out dinner ingredients (resident B).
        SetOutIngredients => "Set Out Ingredients",
        /// 9 — Set dinner table (resident A).
        SetTable => "Set Table",
        /// 10 — Pay bills (resident B).
        PayBills => "Pay Bills",
        /// 11 — Gather food for picnic (resident A).
        GatherFood => "Gather Food",
        /// 12 — Retrieve dishes from cabinet (resident B).
        RetrieveDishes => "Retrieve Dishes",
        /// 13 — Pack picnic supplies (resident A).
        PackSupplies => "Pack Supplies",
        /// 14 — Pack picnic basket (joint).
        PackPicnicBasket => "Pack Picnic Basket",
        /// 15 — Idle / other (transitions, unscripted behavior).
        Other => "Other",
    }
}

impl CasasActivity {
    /// Whether both residents perform this activity together.
    ///
    /// The paper reports 99.3 % accuracy on shared CASAS activities such as
    /// *Move Furniture* and *Play Checkers*.
    pub const fn is_joint(self) -> bool {
        matches!(
            self,
            Self::MoveFurniture | Self::PlayCheckers | Self::PackPicnicBasket
        )
    }

    /// One-based row number in Fig 9.
    pub const fn paper_number(self) -> usize {
        self.index() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_activities() {
        assert_eq!(CasasActivity::COUNT, 15);
    }

    #[test]
    fn joint_activities_match_paper() {
        assert!(CasasActivity::MoveFurniture.is_joint());
        assert!(CasasActivity::PlayCheckers.is_joint());
        assert!(!CasasActivity::SweepFloor.is_joint());
        assert_eq!(
            CasasActivity::ALL.iter().filter(|a| a.is_joint()).count(),
            3
        );
    }

    #[test]
    fn index_roundtrip() {
        for a in CasasActivity::ALL {
            assert_eq!(CasasActivity::from_index(a.index()), Some(a));
        }
    }

    #[test]
    fn paper_numbers() {
        assert_eq!(CasasActivity::FillMedicationDispenser.paper_number(), 1);
        assert_eq!(CasasActivity::Other.paper_number(), 15);
    }
}
