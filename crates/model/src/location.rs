//! Sub-locations SR1–SR14 and the rooms of the PogoPlug testbed.
//!
//! The paper divides a one-bedroom apartment into fourteen sub-regions
//! (Fig 7, Table III) using five/six PIR sensors and nine iBeacons. Ambient
//! PIR sensors report *room*-level occupancy; iBeacon trilateration refines
//! this to the sub-region level.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::activity::vocabulary;
use crate::MacroActivity;

vocabulary! {
    /// Rooms covered by the PIR sensors.
    Room {
        /// Living room (couches, dining table, exercise bike, reading table).
        LivingRoom => "livingroom",
        /// Bedroom (bed and closets).
        Bedroom => "bedroom",
        /// Bathroom — single occupancy.
        Bathroom => "bathroom",
        /// Kitchen.
        Kitchen => "kitchen",
        /// Porch.
        Porch => "porch",
        /// Corridor connecting the rooms.
        Corridor => "corridor",
    }
}

vocabulary! {
    /// The fourteen sub-locations SR1–SR14 of Table III.
    SubLocation {
        /// SR1 — area of the exercise bike.
        ExerciseBike => "SR1:exercise-bike",
        /// SR2 — couch 1.
        Couch1 => "SR2:couch-1",
        /// SR3 — couch 2.
        Couch2 => "SR3:couch-2",
        /// SR4 — dining table.
        DiningTable => "SR4:dining-table",
        /// SR5 — bed.
        Bed => "SR5:bed",
        /// SR6 — closet 1.
        Closet1 => "SR6:closet-1",
        /// SR7 — reading table.
        ReadingTable => "SR7:reading-table",
        /// SR8 — closet 2.
        Closet2 => "SR8:closet-2",
        /// SR9 — bathroom.
        Bathroom => "SR9:bathroom",
        /// SR10 — kitchen.
        Kitchen => "SR10:kitchen",
        /// SR11 — porch.
        Porch => "SR11:porch",
        /// SR12 — rest of living room.
        RestOfLivingRoom => "SR12:rest-of-livingroom",
        /// SR13 — corridor.
        Corridor => "SR13:corridor",
        /// SR14 — rest of bedroom.
        RestOfBedroom => "SR14:rest-of-bedroom",
    }
}

impl SubLocation {
    /// The room containing this sub-region (i.e. which PIR covers it).
    pub const fn room(self) -> Room {
        use SubLocation::*;
        match self {
            ExerciseBike | Couch1 | Couch2 | DiningTable | ReadingTable | RestOfLivingRoom => {
                Room::LivingRoom
            }
            Bed | Closet1 | Closet2 | RestOfBedroom => Room::Bedroom,
            Bathroom => Room::Bathroom,
            Kitchen => Room::Kitchen,
            Porch => Room::Porch,
            Corridor => Room::Corridor,
        }
    }

    /// Paper identifier `SR1`…`SR14`.
    pub fn sr_name(self) -> String {
        format!("SR{}", self.index() + 1)
    }

    /// Whether two residents can plausibly occupy this sub-region at once.
    ///
    /// The bathroom (and, for *sitting*, single-seat furniture) is exclusive;
    /// this backs the paper's inter-user correlation
    /// `U1(t): SR9 ⇒ U2(t): ¬SR9`.
    pub const fn is_exclusive(self) -> bool {
        matches!(self, SubLocation::Bathroom)
    }

    /// Nominal 2-D coordinates (meters) of the sub-region centroid in the
    /// one-bedroom floor plan; used by the iBeacon trilateration substrate.
    pub const fn centroid(self) -> (f64, f64) {
        use SubLocation::*;
        match self {
            ExerciseBike => (1.0, 1.0),
            Couch1 => (3.0, 1.0),
            Couch2 => (4.5, 1.0),
            DiningTable => (6.0, 1.5),
            Bed => (1.5, 6.5),
            Closet1 => (0.5, 5.0),
            ReadingTable => (4.0, 2.8),
            Closet2 => (3.0, 6.5),
            Bathroom => (5.5, 6.0),
            Kitchen => (7.0, 3.5),
            Porch => (8.5, 1.0),
            RestOfLivingRoom => (2.5, 2.2),
            Corridor => (4.5, 4.5),
            RestOfBedroom => (2.0, 5.3),
        }
    }

    /// Sub-regions whose centroid lies in the given room.
    pub fn in_room(room: Room) -> impl Iterator<Item = SubLocation> {
        SubLocation::ALL
            .into_iter()
            .filter(move |s| s.room() == room)
    }

    /// The canonical sub-location(s) where each macro activity is performed.
    ///
    /// These correspond to the "activity straddles locations" discussion in
    /// the paper: the *primary* venue is listed first; secondary venues model
    /// straddling (e.g. cooking spills into the dining table for plating).
    pub fn venues_of(activity: MacroActivity) -> &'static [SubLocation] {
        use MacroActivity as A;
        use SubLocation::*;
        match activity {
            A::Exercising => &[ExerciseBike, RestOfLivingRoom],
            A::PrepareClothes => &[Closet1, Closet2, RestOfBedroom],
            A::Dining => &[DiningTable],
            A::WatchingTv => &[Couch1, Couch2, RestOfLivingRoom],
            A::PrepareFood => &[Kitchen, DiningTable],
            A::Studying => &[ReadingTable],
            A::Sleeping => &[Bed],
            A::Bathrooming => &[Bathroom],
            A::Cooking => &[Kitchen],
            A::PastTimes => &[Porch, Couch1, Couch2],
            A::Random => &[Corridor, RestOfLivingRoom, RestOfBedroom, Kitchen, Porch],
        }
    }
}

/// A straight-line distance helper on the floor plan.
///
/// # Examples
/// ```
/// use cace_model::location::{distance, SubLocation};
/// let d = distance(SubLocation::Kitchen, SubLocation::Kitchen);
/// assert_eq!(d, 0.0);
/// ```
pub fn distance(a: SubLocation, b: SubLocation) -> f64 {
    let (ax, ay) = a.centroid();
    let (bx, by) = b.centroid();
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_subregions_six_rooms() {
        assert_eq!(SubLocation::COUNT, 14);
        assert_eq!(Room::COUNT, 6);
    }

    #[test]
    fn sr_names_follow_paper_order() {
        assert_eq!(SubLocation::ExerciseBike.sr_name(), "SR1");
        assert_eq!(SubLocation::Bathroom.sr_name(), "SR9");
        assert_eq!(SubLocation::RestOfBedroom.sr_name(), "SR14");
    }

    #[test]
    fn every_room_has_a_subregion() {
        for room in Room::ALL {
            assert!(
                SubLocation::in_room(room).count() >= 1,
                "room {room} has no sub-region"
            );
        }
    }

    #[test]
    fn living_room_has_six_subregions() {
        assert_eq!(SubLocation::in_room(Room::LivingRoom).count(), 6);
        assert_eq!(SubLocation::in_room(Room::Bedroom).count(), 4);
    }

    #[test]
    fn bathroom_is_exclusive() {
        assert!(SubLocation::Bathroom.is_exclusive());
        assert!(!SubLocation::Kitchen.is_exclusive());
    }

    #[test]
    fn venues_are_consistent_with_rooms() {
        // Cooking happens in the kitchen room.
        for v in SubLocation::venues_of(MacroActivity::Cooking) {
            assert_eq!(v.room(), Room::Kitchen);
        }
        // Sleeping happens in the bedroom.
        for v in SubLocation::venues_of(MacroActivity::Sleeping) {
            assert_eq!(v.room(), Room::Bedroom);
        }
    }

    #[test]
    fn every_activity_has_a_venue() {
        for a in MacroActivity::ALL {
            assert!(!SubLocation::venues_of(a).is_empty());
        }
    }

    #[test]
    fn centroids_are_distinct() {
        for a in SubLocation::ALL {
            for b in SubLocation::ALL {
                if a != b {
                    assert!(distance(a, b) > 0.0, "{a} and {b} share a centroid");
                }
            }
        }
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        use SubLocation::*;
        let (a, b, c) = (Kitchen, Bed, Porch);
        assert!((distance(a, b) - distance(b, a)).abs() < 1e-12);
        assert!(distance(a, c) <= distance(a, b) + distance(b, c) + 1e-12);
    }
}
