//! User and household identities.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of one resident inside a household (chain index of the coupled
/// model). The paper's deployment pairs two residents per home.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u8);

impl UserId {
    /// Resident occupying chain 1.
    pub const FIRST: UserId = UserId(0);
    /// Resident occupying chain 2.
    pub const SECOND: UserId = UserId(1);

    /// Chain index of this user in the coupled model.
    pub const fn chain(self) -> usize {
        self.0 as usize
    }

    /// The other resident of a two-person household.
    pub const fn partner(self) -> UserId {
        UserId(1 - self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{}", self.0 + 1)
    }
}

/// One smart home with its pair of residents.
///
/// The paper deploys five PogoPlug homes with one resident pair each; the
/// CASAS-shaped dataset has 26 pairs drawn from 40 users.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Household {
    /// Home identifier (`1..=5` for the CACE deployment).
    pub home_id: u32,
    /// Number of residents (the models in this reproduction are instantiated
    /// for 2, matching the paper's evaluation).
    pub residents: u8,
}

impl Household {
    /// Creates a two-resident household, the paper's evaluated configuration.
    pub const fn pair(home_id: u32) -> Self {
        Self {
            home_id,
            residents: 2,
        }
    }

    /// Iterates over the resident ids of this household.
    pub fn users(&self) -> impl Iterator<Item = UserId> {
        (0..self.residents).map(UserId)
    }
}

impl fmt::Display for Household {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "home-{} ({} residents)", self.home_id, self.residents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partner_is_involutive() {
        assert_eq!(UserId::FIRST.partner(), UserId::SECOND);
        assert_eq!(UserId::SECOND.partner(), UserId::FIRST);
        assert_eq!(UserId::FIRST.partner().partner(), UserId::FIRST);
    }

    #[test]
    fn household_users() {
        let home = Household::pair(3);
        let users: Vec<_> = home.users().collect();
        assert_eq!(users, vec![UserId(0), UserId(1)]);
        assert_eq!(home.to_string(), "home-3 (2 residents)");
    }

    #[test]
    fn display_is_one_based() {
        assert_eq!(UserId::FIRST.to_string(), "U1");
        assert_eq!(UserId::SECOND.to_string(), "U2");
    }
}
