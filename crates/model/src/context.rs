//! Composite context tuples: micro states, macro states, and joint states.
//!
//! Following §III of the paper, a user's context at time `t` is an
//! m-dimensional tuple `context_ij(t)` with `j = 1` (micro) holding the
//! postural, gestural, and sub-location elements, and `j = 2` (macro) holding
//! the complex-activity element. The coupled models reason over *joint*
//! states across the two residents.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Gestural, MacroActivity, Postural, Room, SubLocation};

/// A fully specified micro-level context tuple `(postural, gestural, sub-location)`.
///
/// There are `6 × 5 × 14 = 420` distinct micro states per user; they are
/// densely indexable via [`MicroState::index`] for CPT storage.
///
/// # Examples
/// ```
/// use cace_model::{MicroState, Postural, Gestural, SubLocation};
/// let m = MicroState::new(Postural::Walking, Gestural::Talking, SubLocation::Kitchen);
/// assert!(m.index() < MicroState::COUNT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MicroState {
    /// Postural element (smartphone IMU).
    pub postural: Postural,
    /// Oral-gestural element (neck SensorTag IMU).
    pub gestural: Gestural,
    /// Sub-location element (ambient sensors + iBeacons).
    pub location: SubLocation,
}

impl MicroState {
    /// Number of distinct micro states.
    pub const COUNT: usize = Postural::COUNT * Gestural::COUNT * SubLocation::COUNT;

    /// Creates a micro state from its three elements.
    pub const fn new(postural: Postural, gestural: Gestural, location: SubLocation) -> Self {
        Self {
            postural,
            gestural,
            location,
        }
    }

    /// Dense index in `0..Self::COUNT`.
    #[inline]
    pub const fn index(self) -> usize {
        (self.postural.index() * Gestural::COUNT + self.gestural.index()) * SubLocation::COUNT
            + self.location.index()
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(index: usize) -> Option<Self> {
        if index >= Self::COUNT {
            return None;
        }
        let location = SubLocation::from_index(index % SubLocation::COUNT)?;
        let rest = index / SubLocation::COUNT;
        let gestural = Gestural::from_index(rest % Gestural::COUNT)?;
        let postural = Postural::from_index(rest / Gestural::COUNT)?;
        Some(Self {
            postural,
            gestural,
            location,
        })
    }

    /// Iterates over all micro states in index order.
    pub fn all() -> impl Iterator<Item = MicroState> {
        (0..Self::COUNT).map(|i| Self::from_index(i).expect("index in range"))
    }

    /// The room implied by the location element.
    pub const fn room(self) -> Room {
        self.location.room()
    }

    /// Whether a direct temporal transition `self → next` is posturally
    /// feasible (paper Proposition 1 / intra-user correlation).
    pub fn can_transition_to(self, next: MicroState) -> bool {
        self.postural.can_transition_to(next.postural)
    }
}

impl fmt::Display for MicroState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.postural, self.gestural, self.location
        )
    }
}

/// A macro-level context tuple `(activity, sub-location)`.
///
/// The paper's macro tuple carries the complex activity and the location in
/// which it is currently being performed (activities may straddle locations
/// over their lifetime, e.g. cooking while intermittently watching TV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacroState {
    /// The complex activity.
    pub activity: MacroActivity,
    /// Where it is currently being performed.
    pub location: SubLocation,
}

impl MacroState {
    /// Number of distinct macro states.
    pub const COUNT: usize = MacroActivity::COUNT * SubLocation::COUNT;

    /// Creates a macro state.
    pub const fn new(activity: MacroActivity, location: SubLocation) -> Self {
        Self { activity, location }
    }

    /// Dense index in `0..Self::COUNT`.
    #[inline]
    pub const fn index(self) -> usize {
        self.activity.index() * SubLocation::COUNT + self.location.index()
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(index: usize) -> Option<Self> {
        if index >= Self::COUNT {
            return None;
        }
        Some(Self {
            activity: MacroActivity::from_index(index / SubLocation::COUNT)?,
            location: SubLocation::from_index(index % SubLocation::COUNT)?,
        })
    }

    /// Iterates over all macro states in index order.
    pub fn all() -> impl Iterator<Item = MacroState> {
        (0..Self::COUNT).map(|i| Self::from_index(i).expect("index in range"))
    }

    /// Whether the activity is being performed at one of its canonical venues.
    pub fn at_canonical_venue(self) -> bool {
        SubLocation::venues_of(self.activity).contains(&self.location)
    }
}

impl fmt::Display for MacroState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.activity, self.location)
    }
}

/// The hierarchical context of one user at one instant: macro over micro.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UserContext {
    /// Hidden macro-level state.
    pub macro_state: MacroState,
    /// Micro-level state (partially observable).
    pub micro_state: MicroState,
}

impl UserContext {
    /// Creates a user context from its two levels.
    pub const fn new(macro_state: MacroState, micro_state: MicroState) -> Self {
        Self {
            macro_state,
            micro_state,
        }
    }

    /// Whether the two levels agree on location.
    ///
    /// The hierarchy requires the macro tuple's location to match the micro
    /// tuple's location at every instant (the macro activity is *currently*
    /// performed wherever the user currently is).
    pub fn is_location_consistent(self) -> bool {
        self.macro_state.location == self.micro_state.location
    }
}

impl fmt::Display for UserContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {}", self.macro_state, self.micro_state)
    }
}

/// A joint hidden state across the two coupled residents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JointState {
    /// Context of user 1 (chain `l = 1`).
    pub user1: UserContext,
    /// Context of user 2 (chain `l = 2`).
    pub user2: UserContext,
}

impl JointState {
    /// Creates a joint state.
    pub const fn new(user1: UserContext, user2: UserContext) -> Self {
        Self { user1, user2 }
    }

    /// The context of the user with the given chain index (0 or 1).
    ///
    /// # Panics
    /// Panics if `chain > 1`; the coupled model in this reproduction follows
    /// the paper's two-resident instantiation.
    pub fn chain(&self, chain: usize) -> UserContext {
        match chain {
            0 => self.user1,
            1 => self.user2,
            _ => panic!("coupled model has exactly two chains, got index {chain}"),
        }
    }

    /// Whether the joint state violates physical exclusivity (both users
    /// simultaneously in an exclusive sub-region such as the bathroom).
    pub fn violates_exclusivity(&self) -> bool {
        let l1 = self.user1.micro_state.location;
        let l2 = self.user2.micro_state.location;
        l1 == l2 && l1.is_exclusive()
    }
}

impl fmt::Display for JointState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[U1 {} | U2 {}]", self.user1, self.user2)
    }
}

/// An atomic context predicate, the unit of the association-rule transactions
/// (§V-A: each transaction tuple holds the context elements of both users at
/// `t` and `t − 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ContextAtom {
    /// A macro activity is in progress.
    Macro(MacroActivity),
    /// A postural micro state holds.
    Postural(Postural),
    /// A gestural micro state holds.
    Gestural(Gestural),
    /// The user is in a sub-location.
    SubLoc(SubLocation),
    /// The user is in a room (PIR-level context).
    Room(Room),
}

impl ContextAtom {
    /// Total number of distinct atoms
    /// (`11 + 6 + 5 + 14 + 6 = 42` context states per user-instant).
    pub const COUNT: usize =
        MacroActivity::COUNT + Postural::COUNT + Gestural::COUNT + SubLocation::COUNT + Room::COUNT;

    /// Dense index in `0..Self::COUNT`.
    pub const fn index(self) -> usize {
        match self {
            Self::Macro(a) => a.index(),
            Self::Postural(p) => MacroActivity::COUNT + p.index(),
            Self::Gestural(g) => MacroActivity::COUNT + Postural::COUNT + g.index(),
            Self::SubLoc(s) => MacroActivity::COUNT + Postural::COUNT + Gestural::COUNT + s.index(),
            Self::Room(r) => {
                MacroActivity::COUNT
                    + Postural::COUNT
                    + Gestural::COUNT
                    + SubLocation::COUNT
                    + r.index()
            }
        }
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(mut index: usize) -> Option<Self> {
        if index < MacroActivity::COUNT {
            return MacroActivity::from_index(index).map(Self::Macro);
        }
        index -= MacroActivity::COUNT;
        if index < Postural::COUNT {
            return Postural::from_index(index).map(Self::Postural);
        }
        index -= Postural::COUNT;
        if index < Gestural::COUNT {
            return Gestural::from_index(index).map(Self::Gestural);
        }
        index -= Gestural::COUNT;
        if index < SubLocation::COUNT {
            return SubLocation::from_index(index).map(Self::SubLoc);
        }
        index -= SubLocation::COUNT;
        Room::from_index(index).map(Self::Room)
    }

    /// The atoms entailed by a full user context (used to build transactions).
    pub fn atoms_of(ctx: UserContext) -> [ContextAtom; 5] {
        [
            Self::Macro(ctx.macro_state.activity),
            Self::Postural(ctx.micro_state.postural),
            Self::Gestural(ctx.micro_state.gestural),
            Self::SubLoc(ctx.micro_state.location),
            Self::Room(ctx.micro_state.room()),
        ]
    }

    /// Whether a user context satisfies this atomic predicate.
    pub fn holds_for(self, ctx: UserContext) -> bool {
        match self {
            Self::Macro(a) => ctx.macro_state.activity == a,
            Self::Postural(p) => ctx.micro_state.postural == p,
            Self::Gestural(g) => ctx.micro_state.gestural == g,
            Self::SubLoc(s) => ctx.micro_state.location == s,
            Self::Room(r) => ctx.micro_state.room() == r,
        }
    }
}

impl fmt::Display for ContextAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Macro(a) => write!(f, "macro={a}"),
            Self::Postural(p) => write!(f, "postural={p}"),
            Self::Gestural(g) => write!(f, "gestural={g}"),
            Self::SubLoc(s) => write!(f, "subloc={s}"),
            Self::Room(r) => write!(f, "room={r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_context() -> UserContext {
        UserContext::new(
            MacroState::new(MacroActivity::Cooking, SubLocation::Kitchen),
            MicroState::new(Postural::Standing, Gestural::Silent, SubLocation::Kitchen),
        )
    }

    #[test]
    fn micro_state_count() {
        assert_eq!(MicroState::COUNT, 420);
        assert_eq!(MicroState::all().count(), 420);
    }

    #[test]
    fn micro_index_roundtrip_exhaustive() {
        for (i, m) in MicroState::all().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(MicroState::from_index(i), Some(m));
        }
        assert_eq!(MicroState::from_index(MicroState::COUNT), None);
    }

    #[test]
    fn macro_index_roundtrip_exhaustive() {
        for (i, m) in MacroState::all().enumerate() {
            assert_eq!(m.index(), i);
            assert_eq!(MacroState::from_index(i), Some(m));
        }
        assert_eq!(MacroState::COUNT, 154);
    }

    #[test]
    fn atom_index_roundtrip_exhaustive() {
        assert_eq!(ContextAtom::COUNT, 42);
        for i in 0..ContextAtom::COUNT {
            let atom = ContextAtom::from_index(i).expect("valid index");
            assert_eq!(atom.index(), i);
        }
        assert_eq!(ContextAtom::from_index(ContextAtom::COUNT), None);
    }

    #[test]
    fn atoms_of_context_all_hold() {
        let ctx = sample_context();
        for atom in ContextAtom::atoms_of(ctx) {
            assert!(atom.holds_for(ctx), "{atom} should hold");
        }
        assert!(!ContextAtom::Macro(MacroActivity::Sleeping).holds_for(ctx));
    }

    #[test]
    fn location_consistency() {
        let ctx = sample_context();
        assert!(ctx.is_location_consistent());
        let inconsistent = UserContext::new(
            MacroState::new(MacroActivity::Cooking, SubLocation::Kitchen),
            MicroState::new(Postural::Standing, Gestural::Silent, SubLocation::Porch),
        );
        assert!(!inconsistent.is_location_consistent());
    }

    #[test]
    fn exclusivity_violation_detected() {
        let bathroom = UserContext::new(
            MacroState::new(MacroActivity::Bathrooming, SubLocation::Bathroom),
            MicroState::new(Postural::Standing, Gestural::Silent, SubLocation::Bathroom),
        );
        let joint = JointState::new(bathroom, bathroom);
        assert!(joint.violates_exclusivity());

        let kitchen = sample_context();
        assert!(!JointState::new(kitchen, kitchen).violates_exclusivity());
    }

    #[test]
    fn canonical_venue_check() {
        assert!(MacroState::new(MacroActivity::Cooking, SubLocation::Kitchen).at_canonical_venue());
        assert!(!MacroState::new(MacroActivity::Cooking, SubLocation::Bed).at_canonical_venue());
    }

    #[test]
    fn chain_accessor() {
        let ctx = sample_context();
        let joint = JointState::new(ctx, ctx);
        assert_eq!(joint.chain(0), ctx);
        assert_eq!(joint.chain(1), ctx);
    }

    #[test]
    #[should_panic(expected = "two chains")]
    fn chain_accessor_panics_out_of_range() {
        let ctx = sample_context();
        JointState::new(ctx, ctx).chain(2);
    }

    #[test]
    fn micro_transition_follows_postural_rules() {
        let sitting = MicroState::new(Postural::Sitting, Gestural::Silent, SubLocation::Couch1);
        let walking = MicroState::new(Postural::Walking, Gestural::Silent, SubLocation::Couch1);
        let standing = MicroState::new(Postural::Standing, Gestural::Silent, SubLocation::Couch1);
        assert!(!sitting.can_transition_to(walking));
        assert!(sitting.can_transition_to(standing));
        assert!(standing.can_transition_to(walking));
    }

    #[test]
    fn display_formats() {
        let ctx = sample_context();
        let s = ctx.to_string();
        assert!(s.contains("Cooking"));
        assert!(s.contains("standing"));
    }
}
