//! Differential suite for the dense precomputed score tables and the
//! arena-based step kernels (PR 5).
//!
//! Contract: every decode path that now scores through
//! [`ScoreTables`](cace::hdbn::ScoreTables) — batch coupled, batch single,
//! streaming, forward–backward, and the EM expected counts — is
//! **bit-identical** to the naive reference implementations in
//! `cace_testkit::naive`, which score every edge directly through
//! `HdbnParams::transition_score` / `hierarchy_score` exactly as the
//! pre-table decoders did. The properties run over random mined
//! statistics, random tick streams (candidate restrictions, macro bonuses,
//! missing gesturals), and configuration extremes (`coupling_weight` /
//! `hierarchy_weight` at 0 and far above 1, persistence bonuses), plus an
//! engine-level sweep across the four strategies.

use proptest::prelude::*;

use cace::core::{CaceConfig, Strategy};
use cace::hdbn::{
    CoupledHdbn, HdbnConfig, HdbnParams, Lag, MicroCandidate, OnlineCoupledViterbi, SingleHdbn,
    TickInput,
};
use cace::mining::constraint::{ConstraintMiner, LabeledSequence};
use cace_testkit::naive::{
    naive_accumulate_counts, naive_coupled_viterbi, naive_forward_backward, naive_single_viterbi,
};
use cace_testkit::{engine_with, tiny_corpus};

/// Deterministic xorshift for data generation inside a property.
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn f64(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10_000.0
    }
}

/// Random mined statistics over a small random vocabulary.
fn random_params(rng: &mut Rng, config: HdbnConfig) -> HdbnParams {
    let n_macro = 2 + rng.below(2); // 2..=3
    let n_postural = 2 + rng.below(2);
    let n_gestural = 2;
    let n_location = 2 + rng.below(2);
    let len = 60 + rng.below(60);
    let mut seq = LabeledSequence::default();
    for u in 0..2 {
        let mut run = rng.below(n_macro);
        for t in 0..len {
            if t % (5 + rng.below(10)) == 0 {
                run = rng.below(n_macro);
            }
            seq.macros[u].push(run);
            seq.posturals[u].push(rng.below(n_postural));
            seq.gesturals[u].push(rng.below(n_gestural));
            seq.locations[u].push(rng.below(n_location));
        }
    }
    let stats = ConstraintMiner {
        laplace: 0.05 + rng.f64(),
        n_macro,
        n_postural,
        n_gestural,
        n_location,
    }
    .mine(&[seq])
    .expect("random stats mine");
    HdbnParams::new(stats, config).expect("random params build")
}

/// Random tick stream over the params' vocabulary: per-tick candidate
/// counts, observation scores, occasional macro restrictions and bonuses,
/// occasional missing gestural modality.
fn random_ticks(rng: &mut Rng, p: &HdbnParams, len: usize) -> Vec<TickInput> {
    let stats = &p.stats;
    let use_gestural = rng.below(2) == 0;
    (0..len)
        .map(|_| {
            let mut tick = TickInput::default();
            for u in 0..2 {
                let n_cand = 1 + rng.below(3);
                tick.candidates[u] = (0..n_cand)
                    .map(|_| MicroCandidate {
                        postural: rng.below(stats.n_postural),
                        gestural: if use_gestural {
                            Some(rng.below(stats.n_gestural))
                        } else {
                            None
                        },
                        location: rng.below(stats.n_location),
                        obs_loglik: -6.0 * rng.f64(),
                    })
                    .collect();
                if rng.below(4) == 0 {
                    // Random nonempty macro restriction.
                    let keep: Vec<usize> =
                        (0..stats.n_macro).filter(|_| rng.below(2) == 0).collect();
                    if !keep.is_empty() && keep.len() < stats.n_macro {
                        tick.macro_candidates[u] = Some(keep);
                    }
                }
            }
            if rng.below(3) == 0 {
                tick.macro_bonus = (0..stats.n_macro).map(|_| 2.0 * rng.f64() - 1.0).collect();
            }
            tick
        })
        .collect()
}

/// The configuration extremes the tables must be built correctly under.
fn configs() -> Vec<HdbnConfig> {
    vec![
        HdbnConfig::default(),
        HdbnConfig::uncoupled(),
        HdbnConfig {
            coupling_weight: 4.0,
            hierarchy_weight: 0.0,
            persistence_bonus: 0.0,
        },
        HdbnConfig {
            coupling_weight: 0.0,
            hierarchy_weight: 3.0,
            persistence_bonus: 0.9,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Primitive contract: every dense-table entry is a bitwise copy of
    /// the naive scorer it was built from, across config extremes.
    #[test]
    fn table_entries_are_bitwise_copies_of_direct_scoring(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        for config in configs() {
            let p = random_params(&mut rng, config);
            let t = &p.tables;
            let stats = &p.stats;
            for ap in 0..stats.n_macro {
                for pp in 0..stats.n_postural {
                    for a in 0..stats.n_macro {
                        for pn in 0..stats.n_postural {
                            let naive = p.transition_score(ap, pp, a, pn);
                            let fast = t.transition(t.pair(ap, pp), t.pair(a, pn));
                            prop_assert_eq!(fast.to_bits(), naive.to_bits());
                        }
                    }
                }
            }
            for a1 in 0..stats.n_macro {
                for a2 in 0..stats.n_macro {
                    prop_assert_eq!(
                        t.coupling(a1, a2).to_bits(),
                        p.coupling_score(a1, a2).to_bits()
                    );
                }
            }
            for a in 0..stats.n_macro {
                for post in 0..stats.n_postural {
                    for loc in 0..stats.n_location {
                        prop_assert_eq!(
                            t.hierarchy(a, post, None, loc).to_bits(),
                            p.hierarchy_score(a, post, None, loc).to_bits()
                        );
                        for g in 0..stats.n_gestural {
                            prop_assert_eq!(
                                t.hierarchy(a, post, Some(g), loc).to_bits(),
                                p.hierarchy_score(a, post, Some(g), loc).to_bits()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Decode contract, batch: the table-scored exact decoders reproduce
    /// the naive references float for float — coupled and single chains.
    #[test]
    fn batch_decodes_match_naive_scoring_bit_for_bit(
        seed in 0u64..10_000,
        len in 8usize..40,
    ) {
        let mut rng = Rng::new(seed);
        for config in configs() {
            let p = random_params(&mut rng, config);
            let ticks = random_ticks(&mut rng, &p, len);

            let (naive_macros, naive_lp) = naive_coupled_viterbi(&p, &ticks);
            let fast = CoupledHdbn::new(p.clone()).viterbi(&ticks).expect("decode");
            prop_assert_eq!(&fast.macros, &naive_macros, "coupled macros");
            prop_assert_eq!(fast.log_prob.to_bits(), naive_lp.to_bits(), "coupled log_prob");

            let single = SingleHdbn::new(p.clone());
            for user in 0..2 {
                let (nm, nlp) = naive_single_viterbi(&p, &ticks, user);
                let sp = single.viterbi(&ticks, user).expect("single decode");
                prop_assert_eq!(&sp.macros, &nm, "single macros user {}", user);
                prop_assert_eq!(sp.log_prob.to_bits(), nlp.to_bits(), "single log_prob");
            }
        }
    }

    /// Decode contract, streaming: the arena-pooled online coupled decoder
    /// at unbounded lag reproduces the naive reference too (so pooling the
    /// window entries changed no arithmetic).
    #[test]
    fn streaming_decode_matches_naive_scoring(
        seed in 0u64..10_000,
        len in 8usize..30,
    ) {
        let mut rng = Rng::new(seed);
        for config in configs() {
            let p = random_params(&mut rng, config);
            let ticks = random_ticks(&mut rng, &p, len);
            let (naive_macros, naive_lp) = naive_coupled_viterbi(&p, &ticks);
            let mut online = OnlineCoupledViterbi::new(CoupledHdbn::new(p), Lag::Unbounded);
            for tick in &ticks {
                online.push(tick).expect("push");
            }
            let path = online.finalize().expect("finalize");
            prop_assert_eq!(&path.macros, &naive_macros);
            prop_assert_eq!(path.log_prob.to_bits(), naive_lp.to_bits());
        }
    }

    /// Inference contract: forward–backward posteriors and the EM expected
    /// counts — the sum-based paths — are bitwise unchanged by table
    /// scoring and the hoisted term buffers.
    #[test]
    fn posteriors_and_em_counts_match_naive_scoring(
        seed in 0u64..10_000,
        len in 6usize..25,
    ) {
        let mut rng = Rng::new(seed);
        for config in configs() {
            let p = random_params(&mut rng, config);
            let ticks = random_ticks(&mut rng, &p, len);
            let stats = &p.stats;
            let model = SingleHdbn::new(p.clone());
            for user in 0..2 {
                let (naive_gamma, naive_ll) = naive_forward_backward(&p, &ticks, user);
                let post = model.forward_backward(&ticks, user).expect("fb");
                prop_assert_eq!(post.log_likelihood.to_bits(), naive_ll.to_bits());
                prop_assert_eq!(post.gamma.len(), naive_gamma.len());
                for (g_fast, g_naive) in post.gamma.iter().zip(&naive_gamma) {
                    for (a, b) in g_fast.iter().zip(g_naive) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "gamma entry");
                    }
                }

                let zeros = || cace::hdbn::single::ExpectedCounts::zeros(
                    stats.n_macro,
                    stats.n_postural,
                    stats.n_gestural,
                    stats.n_location,
                );
                let mut fast_counts = zeros();
                model
                    .accumulate_counts(&ticks, user, &mut fast_counts)
                    .expect("counts");
                let mut naive_counts = zeros();
                naive_accumulate_counts(&p, &ticks, user, &mut naive_counts);
                prop_assert_eq!(&fast_counts, &naive_counts, "expected counts user {}", user);
            }
        }
    }

    /// Engine-level contract across strategies: the engine's decode over
    /// its own prepared state spaces equals the naive reference on the
    /// same inputs (C2/NCS coupled, NCR per-chain); NH's flat table is
    /// covered by its own unit differential in `cace-core`. All four
    /// strategies run end to end.
    #[test]
    fn engine_recognition_matches_naive_reference_decoders(
        seed in 0u64..1_000,
        ticks in 45usize..60,
    ) {
        let (train, test) = tiny_corpus(3, ticks, seed);
        for strategy in Strategy::ALL {
            let engine = engine_with(&train, &CaceConfig::default().with_strategy(strategy));
            let session = &test[0];
            let rec = engine.recognize(session).expect("recognize");
            prop_assert_eq!(rec.macros[0].len(), session.len());
            let inputs = engine.tick_inputs(session);
            let params = engine.hdbn_params().as_ref();
            match strategy {
                Strategy::NaiveConstraint | Strategy::CorrelationConstraint => {
                    let (naive_macros, _) = naive_coupled_viterbi(params, &inputs);
                    prop_assert_eq!(&rec.macros, &naive_macros, "{} macros", strategy);
                }
                Strategy::NaiveCorrelation => {
                    for user in 0..2 {
                        let (naive_macros, _) = naive_single_viterbi(params, &inputs, user);
                        prop_assert_eq!(&rec.macros[user], &naive_macros, "{} macros", strategy);
                    }
                }
                Strategy::NaiveHmm => {}
            }
        }
    }
}
