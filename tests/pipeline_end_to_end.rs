//! End-to-end integration tests across the whole workspace: simulate,
//! train, recognize, evaluate.

use cace::behavior::session::train_test_split;
use cace::behavior::{
    cace_grammar, generate_cace_dataset, generate_casas_dataset, CasasConfig, SessionConfig,
};
use cace::core::{CaceConfig, CaceEngine, Strategy};
use cace::eval::ConfusionMatrix;
use cace::model::StateMask;

fn cace_split(
    sessions: usize,
    ticks: usize,
    seed: u64,
) -> (Vec<cace::behavior::Session>, Vec<cace::behavior::Session>) {
    let grammar = cace_grammar();
    let data = generate_cace_dataset(
        &grammar,
        1,
        sessions,
        &SessionConfig::tiny().with_ticks(ticks),
        seed,
    );
    train_test_split(data, 0.75)
}

#[test]
fn c2_pipeline_reaches_high_accuracy() {
    let (train, test) = cace_split(4, 180, 1);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let mut confusion = ConfusionMatrix::new(engine.n_macro());
    for session in &test {
        let rec = engine.recognize(session).unwrap();
        for u in 0..2 {
            confusion.record_all(&session.labels_of(u), &rec.macros[u]);
        }
    }
    let acc = confusion.accuracy();
    assert!(
        acc > 0.6,
        "C2 accuracy {acc} too low for a clean simulation"
    );
}

#[test]
fn full_modality_beats_ablations_on_average() {
    let (train, test) = cace_split(4, 160, 2);
    let mut scores = Vec::new();
    for mask in [StateMask::FULL, StateMask::NO_LOCATION] {
        let engine = CaceEngine::train(&train, &CaceConfig::default().with_mask(mask)).unwrap();
        let mut acc = 0.0;
        for session in &test {
            acc += engine.recognize(session).unwrap().accuracy(session);
        }
        scores.push(acc / test.len() as f64);
    }
    assert!(
        scores[0] + 0.02 > scores[1],
        "full {:.3} should not lose clearly to location-ablated {:.3}",
        scores[0],
        scores[1]
    );
}

#[test]
fn coupled_strategies_beat_flat_hmm() {
    let (train, test) = cace_split(4, 160, 3);
    let mut by_strategy = std::collections::HashMap::new();
    for strategy in Strategy::ALL {
        let engine =
            CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy)).unwrap();
        let mut acc = 0.0;
        for session in &test {
            acc += engine.recognize(session).unwrap().accuracy(session);
        }
        by_strategy.insert(strategy.label(), acc / test.len() as f64);
    }
    // The coupled hierarchical configuration should at least match NH.
    assert!(
        by_strategy["C2"] + 0.05 >= by_strategy["NH"],
        "C2 {:.3} vs NH {:.3}",
        by_strategy["C2"],
        by_strategy["NH"]
    );
}

#[test]
fn c2_prunes_the_state_space_by_an_order_of_magnitude() {
    let (train, test) = cace_split(4, 150, 4);
    let ncs = CaceEngine::train(
        &train,
        &CaceConfig::default().with_strategy(Strategy::NaiveConstraint),
    )
    .unwrap();
    let c2 = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let mut ncs_ops = 0u64;
    let mut c2_ops = 0u64;
    for session in &test {
        ncs_ops += ncs.recognize(session).unwrap().transition_ops;
        c2_ops += c2.recognize(session).unwrap().transition_ops;
    }
    let ratio = ncs_ops as f64 / c2_ops.max(1) as f64;
    assert!(ratio > 4.0, "pruning speedup only {ratio:.1}× (paper: 16×)");
}

#[test]
fn casas_pipeline_runs_without_gestural_modality() {
    let cfg = CasasConfig {
        pairs: 2,
        sessions_per_pair: 2,
        ticks: 120,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 5);
    let (train, test) = train_test_split(sessions, 0.75);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    assert_eq!(engine.n_macro(), 15);
    let rec = engine.recognize(&test[0]).unwrap();
    let acc = rec.accuracy(&test[0]);
    assert!(acc > 0.3, "CASAS accuracy {acc} collapsed");
}

#[test]
fn recognition_is_deterministic() {
    let (train, test) = cace_split(3, 100, 6);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let a = engine.recognize(&test[0]).unwrap();
    let b = engine.recognize(&test[0]).unwrap();
    assert_eq!(a.macros, b.macros);
    assert_eq!(a.states_explored, b.states_explored);
}

#[test]
fn em_refinement_does_not_break_the_pipeline() {
    let (train, test) = cace_split(3, 100, 7);
    let mut config = CaceConfig {
        run_em: true,
        ..CaceConfig::default()
    };
    config.em.max_iters = 2;
    let engine = CaceEngine::train(&train, &config).unwrap();
    let rec = engine.recognize(&test[0]).unwrap();
    assert!(rec.accuracy(&test[0]) > 0.3);
}

#[test]
fn initial_rules_work_without_any_mined_data_effect() {
    let (train, test) = cace_split(3, 100, 8);
    let config = CaceConfig {
        use_initial_rules: true,
        ..CaceConfig::default()
    };
    let engine = CaceEngine::train(&train, &config).unwrap();
    // Initial rules add 12 positive + 2 negative entries on top of mining.
    assert!(engine.rules().len() >= 14);
    let rec = engine.recognize(&test[0]).unwrap();
    assert!(rec.rules_fired > 0);
}
