//! Property-based tests (proptest) over the core data structures and
//! inference invariants.

use proptest::prelude::*;

use cace::hdbn::{log_sum_exp, CoupledHdbn, HdbnConfig, HdbnParams, MicroCandidate, TickInput};
use cace::mining::constraint::{ConstraintMiner, LabeledSequence};
use cace::mining::{mine_frequent_itemsets, AprioriConfig, Transaction};
use cace::mining::{AtomSpace, ItemId};
use cace::model::{MicroState, MicroStateSpace, TickIndex, TimeSpan};
use cace::signal::{Quaternion, Vec3};

// ---------- quaternion algebra ----------

fn arb_vec3() -> impl Strategy<Value = Vec3> {
    (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_quat() -> impl Strategy<Value = Quaternion> {
    (arb_vec3(), -3.1f64..3.1).prop_map(|(axis, angle)| {
        Quaternion::from_axis_angle(if axis.norm() < 1e-6 { Vec3::X } else { axis }, angle)
    })
}

proptest! {
    #[test]
    fn rotation_preserves_norm(q in arb_quat(), v in arb_vec3()) {
        let rotated = q.rotate(v);
        prop_assert!((rotated.norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn rotation_composition_is_homomorphic(a in arb_quat(), b in arb_quat(), v in arb_vec3()) {
        let lhs = (a * b).rotate(v);
        let rhs = a.rotate(b.rotate(v));
        prop_assert!((lhs - rhs).norm() < 1e-8);
    }

    #[test]
    fn unit_quaternion_inverse_is_conjugate(q in arb_quat(), v in arb_vec3()) {
        let inv = q.inverse().expect("unit quaternions are invertible");
        let back = inv.rotate(q.rotate(v));
        prop_assert!((back - v).norm() < 1e-8);
    }

    #[test]
    fn dot_product_invariant_under_rotation(q in arb_quat(), a in arb_vec3(), b in arb_vec3()) {
        let before = a.dot(b);
        let after = q.rotate(a).dot(q.rotate(b));
        prop_assert!((before - after).abs() < 1e-8);
    }
}

// ---------- micro-state bitsets ----------

fn arb_micro_states() -> impl Strategy<Value = Vec<MicroState>> {
    prop::collection::vec(0usize..MicroState::COUNT, 0..40).prop_map(|ids| {
        ids.into_iter()
            .map(|i| MicroState::from_index(i).expect("in range"))
            .collect()
    })
}

proptest! {
    #[test]
    fn bitset_matches_reference_set(states in arb_micro_states()) {
        let space = MicroStateSpace::from_states(states.clone());
        let reference: std::collections::HashSet<MicroState> = states.into_iter().collect();
        prop_assert_eq!(space.len(), reference.len());
        for m in MicroState::all() {
            prop_assert_eq!(space.contains(m), reference.contains(&m));
        }
    }

    #[test]
    fn intersection_is_subset_of_both(a in arb_micro_states(), b in arb_micro_states()) {
        let sa = MicroStateSpace::from_states(a);
        let sb = MicroStateSpace::from_states(b);
        let mut inter = sa.clone();
        inter.intersect(&sb);
        prop_assert!(inter.len() <= sa.len());
        prop_assert!(inter.len() <= sb.len());
        for m in inter.iter() {
            prop_assert!(sa.contains(m) && sb.contains(m));
        }
        // union ⊇ both
        let mut uni = sa.clone();
        uni.union(&sb);
        prop_assert!(uni.len() >= sa.len().max(sb.len()));
        // |A| + |B| = |A∪B| + |A∩B|
        prop_assert_eq!(sa.len() + sb.len(), uni.len() + inter.len());
    }
}

// ---------- time spans ----------

proptest! {
    #[test]
    fn duration_error_is_zero_iff_exact(s in 0usize..100, len in 1usize..50, ds in 0usize..10, de in 0usize..10) {
        // The predicted span must be well-formed (start ≤ end).
        prop_assume!(ds <= len + de);
        let truth = TimeSpan::new(TickIndex(s), TickIndex(s + len));
        let predicted = TimeSpan::new(TickIndex(s + ds), TickIndex(s + len + de));
        let err = truth.duration_error(&predicted);
        if ds == 0 && de == 0 {
            prop_assert_eq!(err, 0.0);
        } else {
            prop_assert!(err > 0.0);
            prop_assert!((err - (ds + de) as f64 / len as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn overlap_is_symmetric_and_bounded(a in 0usize..50, al in 0usize..30, b in 0usize..50, bl in 0usize..30) {
        let sa = TimeSpan::new(TickIndex(a), TickIndex(a + al));
        let sb = TimeSpan::new(TickIndex(b), TickIndex(b + bl));
        prop_assert_eq!(sa.overlap(&sb), sb.overlap(&sa));
        prop_assert!(sa.overlap(&sb) <= al.min(bl));
    }
}

// ---------- Apriori invariants ----------

fn arb_corpus() -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(
        prop::collection::vec(0u32..30, 1..8)
            .prop_map(|items| Transaction::new(items.into_iter().map(ItemId).collect())),
        5..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn apriori_support_is_antitone(corpus in arb_corpus()) {
        let cfg = AprioriConfig { min_support: 0.1, min_confidence: 0.5, max_itemset: 3 };
        let levels = mine_frequent_itemsets(&corpus, &cfg);
        // Every reported support is correct and ≥ minSup; every subset of a
        // frequent itemset is frequent (downward closure).
        for level in &levels {
            for set in level {
                let count = corpus.iter().filter(|t| t.contains_all(&set.items)).count();
                let support = count as f64 / corpus.len() as f64;
                prop_assert!((support - set.support).abs() < 1e-12);
                prop_assert!(set.support >= cfg.min_support - 1e-12);
            }
        }
        for (k, level) in levels.iter().enumerate().skip(1) {
            for set in level {
                for skip in 0..set.items.len() {
                    let sub: Vec<ItemId> = set
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &v)| v)
                        .collect();
                    prop_assert!(
                        levels[k - 1].iter().any(|f| f.items == sub),
                        "downward closure violated"
                    );
                }
            }
        }
    }
}

// ---------- constraint-miner CPT normalization ----------

fn arb_labeled_sequence() -> impl Strategy<Value = LabeledSequence> {
    (2usize..40).prop_flat_map(|n| {
        let seqs = prop::collection::vec(0usize..3, n);
        (seqs.clone(), seqs.clone(), seqs.clone(), seqs).prop_map(move |(m1, m2, p, l)| {
            LabeledSequence {
                macros: [m1.clone(), m2],
                posturals: [p.clone(), p],
                gesturals: [vec![0; n], vec![0; n]],
                locations: [l.clone(), l],
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn mined_stats_always_validate(seq in arb_labeled_sequence()) {
        let miner = ConstraintMiner {
            laplace: 0.5,
            n_macro: 3,
            n_postural: 3,
            n_gestural: 2,
            n_location: 3,
        };
        let stats = miner.mine(&[seq]).expect("well-formed sequence");
        prop_assert!(stats.validate().is_ok());
        for row in &stats.intra_trans {
            prop_assert!(row.iter().all(|&p| p > 0.0));
        }
        for &e in &stats.end_prob {
            prop_assert!((0.0..=1.0).contains(&e));
        }
    }
}

// ---------- coupled Viterbi optimality vs brute force ----------

fn toy_params(coupling: bool) -> HdbnParams {
    let mut macros = Vec::new();
    for r in 0..20 {
        for _ in 0..5 {
            macros.push(r % 2);
        }
    }
    let n = macros.len();
    let seq = LabeledSequence {
        macros: [macros.clone(), macros.clone()],
        posturals: [macros.clone(), macros.clone()],
        gesturals: [vec![0; n], vec![0; n]],
        locations: [macros.clone(), macros],
    };
    let stats = ConstraintMiner {
        laplace: 0.3,
        n_macro: 2,
        n_postural: 2,
        n_gestural: 2,
        n_location: 2,
    }
    .mine(&[seq])
    .unwrap();
    let cfg = if coupling {
        HdbnConfig::default()
    } else {
        HdbnConfig::uncoupled()
    };
    HdbnParams::new(stats, cfg).unwrap()
}

fn brute_force_best(params: &HdbnParams, ticks: &[TickInput]) -> f64 {
    // Enumerate every joint path over per-user states (a, cand).
    let states_at = |t: usize, u: usize| -> Vec<(usize, usize)> {
        (0..2usize)
            .flat_map(|a| (0..ticks[t].candidates[u].len()).map(move |c| (a, c)))
            .collect()
    };
    let emission = |t: usize, u: usize, s: (usize, usize)| -> f64 {
        let cand = ticks[t].candidates[u][s.1];
        cand.obs_loglik + params.hierarchy_score(s.0, cand.postural, cand.gestural, cand.location)
    };
    let mut best = f64::NEG_INFINITY;
    // Paths are tuples of joint states; enumerate recursively.
    fn recurse(
        params: &HdbnParams,
        ticks: &[TickInput],
        t: usize,
        prev: Option<((usize, usize), (usize, usize))>,
        score: f64,
        states_at: &dyn Fn(usize, usize) -> Vec<(usize, usize)>,
        emission: &dyn Fn(usize, usize, (usize, usize)) -> f64,
        best: &mut f64,
    ) {
        if t == ticks.len() {
            if score > *best {
                *best = score;
            }
            return;
        }
        for s1 in states_at(t, 0) {
            for s2 in states_at(t, 1) {
                let mut step =
                    emission(t, 0, s1) + emission(t, 1, s2) + params.coupling_score(s1.0, s2.0);
                match prev {
                    None => {
                        step += params.log_prior[s1.0] + params.log_prior[s2.0];
                    }
                    Some((p1, p2)) => {
                        let p1_post = ticks[t - 1].candidates[0][p1.1].postural;
                        let p2_post = ticks[t - 1].candidates[1][p2.1].postural;
                        let c1 = ticks[t].candidates[0][s1.1].postural;
                        let c2 = ticks[t].candidates[1][s2.1].postural;
                        step += params.transition_score(p1.0, p1_post, s1.0, c1)
                            + params.transition_score(p2.0, p2_post, s2.0, c2);
                    }
                }
                recurse(
                    params,
                    ticks,
                    t + 1,
                    Some((s1, s2)),
                    score + step,
                    states_at,
                    emission,
                    best,
                );
            }
        }
    }
    recurse(
        params, ticks, 0, None, 0.0, &states_at, &emission, &mut best,
    );
    best
}

fn arb_ticks() -> impl Strategy<Value = Vec<TickInput>> {
    prop::collection::vec(prop::collection::vec(-3.0f64..0.0, 4), 2..4).prop_map(|liks| {
        liks.into_iter()
            .map(|row| {
                let cands = |base: usize| -> Vec<MicroCandidate> {
                    (0..2)
                        .map(|p| MicroCandidate {
                            postural: p,
                            gestural: Some(0),
                            location: p,
                            obs_loglik: row[base + p],
                        })
                        .collect()
                };
                TickInput {
                    candidates: [cands(0), cands(2)],
                    macro_candidates: [None, None],
                    macro_bonus: Vec::new(),
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn coupled_viterbi_matches_brute_force(ticks in arb_ticks()) {
        let params = toy_params(true);
        let decoder = CoupledHdbn::new(params.clone());
        let path = decoder.viterbi(&ticks).expect("decodable");
        let brute = brute_force_best(&params, &ticks);
        prop_assert!(
            (path.log_prob - brute).abs() < 1e-9,
            "viterbi {} vs brute force {}", path.log_prob, brute
        );
    }
}

// ---------- log-sum-exp ----------

proptest! {
    #[test]
    fn log_sum_exp_bounds(xs in prop::collection::vec(-50.0f64..50.0, 1..20)) {
        let lse = log_sum_exp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        prop_assert!(lse <= max + (xs.len() as f64).ln() + 1e-12);
    }
}

// ---------- atom space ----------

proptest! {
    #[test]
    fn atom_space_item_roundtrip(raw in 0u32..168) {
        let space = AtomSpace::cace();
        let id = ItemId(raw);
        let item = space.decode(id).expect("in range");
        prop_assert_eq!(space.encode(item), id);
    }
}
