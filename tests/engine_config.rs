//! Engine-configuration behaviors: augmentation weights, beams (candidate
//! and frontier), evidence thresholds.

use cace::behavior::Session;
use cace::core::{CaceConfig, DecoderConfig, Strategy};
use cace_testkit::{engine_with, tiny_corpus};

fn split(seed: u64) -> (Vec<Session>, Vec<Session>) {
    tiny_corpus(4, 140, seed)
}

#[test]
fn zero_coupling_weight_still_decodes() {
    let (train, test) = split(21);
    let config = CaceConfig {
        coupling_weight: 0.0,
        ..CaceConfig::default()
    };
    let engine = engine_with(&train, &config);
    let rec = engine.recognize(&test[0]).unwrap();
    assert!(rec.accuracy(&test[0]) > 0.3);
}

#[test]
fn zero_hierarchy_weight_hurts_but_runs() {
    let (train, test) = split(22);
    let baseline = engine_with(&train, &CaceConfig::default());
    let flat_config = CaceConfig {
        hierarchy_weight: 0.0,
        ..CaceConfig::default()
    };
    let flat = engine_with(&train, &flat_config);
    let acc_base = baseline.recognize(&test[0]).unwrap().accuracy(&test[0]);
    let acc_flat = flat.recognize(&test[0]).unwrap().accuracy(&test[0]);
    // The hierarchy carries signal; dropping it must not help much.
    assert!(
        acc_base + 0.1 >= acc_flat,
        "hierarchy off ({acc_flat}) should not clearly beat on ({acc_base})"
    );
}

#[test]
fn wider_beam_explores_more_states() {
    let (train, test) = split(23);
    let narrow_cfg = CaceConfig {
        beam: 2,
        ..CaceConfig::default()
    }
    .with_strategy(Strategy::NaiveConstraint);
    let wide_cfg = CaceConfig {
        beam: 12,
        ..CaceConfig::default()
    }
    .with_strategy(Strategy::NaiveConstraint);
    let narrow = engine_with(&train, &narrow_cfg);
    let wide = engine_with(&train, &wide_cfg);
    let rn = narrow.recognize(&test[0]).unwrap();
    let rw = wide.recognize(&test[0]).unwrap();
    assert!(rw.states_explored > rn.states_explored);
    assert!(rw.transition_ops > rn.transition_ops);
}

#[test]
fn narrower_frontier_beam_does_less_transition_work() {
    let (train, test) = split(25);
    let trained = engine_with(&train, &CaceConfig::default());
    let mut ops = Vec::new();
    for k in [usize::MAX, 64, 16, 4] {
        // Re-beam the one trained engine: the decoder is decode-time state.
        let engine = trained.with_decoder(DecoderConfig::top_k(k));
        ops.push(engine.recognize(&test[0]).unwrap().transition_ops);
    }
    // TopK(usize::MAX) never prunes (== exact); each narrower beam must do
    // strictly less transition work on this workload.
    for pair in ops.windows(2) {
        assert!(pair[1] < pair[0], "narrower beam must cut work: {ops:?}");
    }
}

#[test]
fn frontier_bound_matches_decoded_shapes() {
    let (train, _) = split(26);
    let c2 = engine_with(&train, &CaceConfig::default());
    let cfg = c2.config();
    assert_eq!(
        c2.frontier_bound(),
        (c2.n_macro() * cfg.beam) * (c2.n_macro() * cfg.beam)
    );
    // A TopK at the bound is exact by construction.
    assert_eq!(
        Strategy::CorrelationConstraint.frontier_bound(c2.n_macro(), cfg.beam, cfg.nh_beam),
        c2.frontier_bound()
    );
}

#[test]
fn strict_evidence_thresholds_reduce_rule_firings() {
    let (train, test) = split(24);
    let loose = engine_with(&train, &CaceConfig::default());
    let mut strict_cfg = CaceConfig::default();
    strict_cfg.evidence.postural_confidence = 0.999;
    strict_cfg.evidence.gestural_confidence = 0.999;
    strict_cfg.evidence.beacon_max_residual = 0.0;
    let strict = engine_with(&train, &strict_cfg);
    let fl = loose.recognize(&test[0]).unwrap().rules_fired;
    let fs = strict.recognize(&test[0]).unwrap().rules_fired;
    assert!(
        fs <= fl,
        "stricter evidence must not fire more rules ({fs} vs {fl})"
    );
}
