//! Engine-configuration behaviors: augmentation weights, beams, evidence
//! thresholds.

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine, Strategy};

fn split(seed: u64) -> (Vec<cace::behavior::Session>, Vec<cace::behavior::Session>) {
    let grammar = cace_grammar();
    let data = generate_cace_dataset(&grammar, 1, 4, &SessionConfig::tiny().with_ticks(140), seed);
    train_test_split(data, 0.75)
}

#[test]
fn zero_coupling_weight_still_decodes() {
    let (train, test) = split(21);
    let config = CaceConfig {
        coupling_weight: 0.0,
        ..CaceConfig::default()
    };
    let engine = CaceEngine::train(&train, &config).unwrap();
    let rec = engine.recognize(&test[0]).unwrap();
    assert!(rec.accuracy(&test[0]) > 0.3);
}

#[test]
fn zero_hierarchy_weight_hurts_but_runs() {
    let (train, test) = split(22);
    let baseline = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let flat_config = CaceConfig {
        hierarchy_weight: 0.0,
        ..CaceConfig::default()
    };
    let flat = CaceEngine::train(&train, &flat_config).unwrap();
    let acc_base = baseline.recognize(&test[0]).unwrap().accuracy(&test[0]);
    let acc_flat = flat.recognize(&test[0]).unwrap().accuracy(&test[0]);
    // The hierarchy carries signal; dropping it must not help much.
    assert!(
        acc_base + 0.1 >= acc_flat,
        "hierarchy off ({acc_flat}) should not clearly beat on ({acc_base})"
    );
}

#[test]
fn wider_beam_explores_more_states() {
    let (train, test) = split(23);
    let narrow_cfg = CaceConfig {
        beam: 2,
        ..CaceConfig::default()
    }
    .with_strategy(Strategy::NaiveConstraint);
    let wide_cfg = CaceConfig {
        beam: 12,
        ..CaceConfig::default()
    }
    .with_strategy(Strategy::NaiveConstraint);
    let narrow = CaceEngine::train(&train, &narrow_cfg).unwrap();
    let wide = CaceEngine::train(&train, &wide_cfg).unwrap();
    let rn = narrow.recognize(&test[0]).unwrap();
    let rw = wide.recognize(&test[0]).unwrap();
    assert!(rw.states_explored > rn.states_explored);
    assert!(rw.transition_ops > rn.transition_ops);
}

#[test]
fn strict_evidence_thresholds_reduce_rule_firings() {
    let (train, test) = split(24);
    let loose = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let mut strict_cfg = CaceConfig::default();
    strict_cfg.evidence.postural_confidence = 0.999;
    strict_cfg.evidence.gestural_confidence = 0.999;
    strict_cfg.evidence.beacon_max_residual = 0.0;
    let strict = CaceEngine::train(&train, &strict_cfg).unwrap();
    let fl = loose.recognize(&test[0]).unwrap().rules_fired;
    let fs = strict.recognize(&test[0]).unwrap().rules_fired;
    assert!(
        fs <= fl,
        "stricter evidence must not fire more rules ({fs} vs {fl})"
    );
}
