//! Differential suite for beam-pruned decoding: every pruned mode is held
//! against the exact decoder it approximates.
//!
//! The contracts, from strongest to loosest:
//!
//! 1. **Degenerate beams are bit-identical to `Beam::Exact`.** A `TopK(k)`
//!    with `k >=` the strategy's frontier bound, or a `LogThreshold` wide
//!    enough to keep everything, must reproduce the exact engine output
//!    *exactly* — macros, overhead accounting, every float — on all four
//!    strategies. (Exact itself being bit-identical to the pre-beam
//!    decoders is pinned by the unchanged equivalence suites and unit
//!    tests, which ran against the pre-beam decoders before this suite
//!    existed.)
//! 2. **`TopK` path log-likelihood is monotone non-decreasing in `k`**, and
//!    reaches the exact optimum at `k = |joint states|`.
//! 3. **Pruning never invents a better path**: every pruned decode scores
//!    at most the exact optimum (its path is a legal path of the exact
//!    model).
//! 4. **Macro accuracy under a production-sized beam stays within a
//!    stated bound of exact** on simulated sessions: ≤ 2 percentage points
//!    at 1/16th of the C2 frontier, ≤ 5 at 1/64th.

use proptest::prelude::*;

use cace::core::{CaceConfig, DecoderConfig, Strategy};
use cace::hdbn::{Beam, CoupledHdbn, SingleHdbn, TickInput};
use cace_testkit::{
    assert_recognitions_identical, engine_with, tiny_corpus, toy_glitchy_ticks, toy_obs_tick,
    toy_two_activity_params,
};

/// Toy tick stream with seed-controlled glitches — enough structure for
/// the decoder to smooth, enough noise that pruning decisions matter.
fn seeded_ticks(len: usize, seed: u64) -> Vec<TickInput> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|t| {
            let base = (t / 8) % 2;
            let flip = next() % 5 == 0;
            let strength = 0.25 + (next() % 100) as f64 / 25.0;
            toy_obs_tick(if flip { 1 - base } else { base }, strength)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Contract 1: degenerate beams == exact, bit for bit, on all four
    /// strategies, batch recognition end to end.
    #[test]
    fn degenerate_beams_are_bit_identical_to_exact(
        ticks in 45usize..70,
        seed in 0u64..1_000,
    ) {
        let (train, test) = tiny_corpus(4, ticks, seed);
        for strategy in Strategy::ALL {
            let exact_engine =
                engine_with(&train, &CaceConfig::default().with_strategy(strategy));
            let bound = exact_engine.frontier_bound();
            for decoder in [
                DecoderConfig::top_k(bound),
                DecoderConfig::top_k(usize::MAX),
                DecoderConfig::log_threshold(f64::INFINITY),
            ] {
                // Re-beam the trained engine: the decoder is decode-time
                // state, so no retraining (and the round-trip through
                // training with a decoder set is covered by
                // persistence_roundtrip.rs).
                let wide_engine = exact_engine.with_decoder(decoder);
                for (i, session) in test.iter().enumerate() {
                    let exact = exact_engine.recognize(session).expect("exact");
                    let wide = wide_engine.recognize(session).expect("degenerate beam");
                    assert_recognitions_identical(
                        &wide,
                        &exact,
                        &format!("{strategy} {decoder:?} session {i}"),
                    );
                }
            }
        }
    }

    /// Contracts 2 + 3 on the coupled decoder: log-likelihood is monotone
    /// non-decreasing along the full TopK ladder, never exceeds exact, and
    /// the full-width beam *is* exact (JointPath equality, floats and
    /// accounting included).
    #[test]
    fn top_k_log_likelihood_is_monotone_in_k(
        len in 24usize..60,
        seed in 0u64..10_000,
    ) {
        let ticks = seeded_ticks(len, seed);
        let exact = CoupledHdbn::new(toy_two_activity_params(true))
            .viterbi(&ticks)
            .expect("exact decode");
        // 2 macros × 2 candidates per chain → 16 joint states.
        let full_width = 16usize;
        let mut prev_lp = f64::NEG_INFINITY;
        for k in 1..=full_width {
            let pruned = CoupledHdbn::new(toy_two_activity_params(true))
                .with_decoder(DecoderConfig::top_k(k))
                .viterbi(&ticks)
                .expect("pruned decode");
            prop_assert!(
                pruned.log_prob >= prev_lp,
                "k={}: log_prob {} dropped below k-1's {}",
                k, pruned.log_prob, prev_lp
            );
            prop_assert!(
                pruned.log_prob <= exact.log_prob,
                "k={}: pruned {} beat exact {}",
                k, pruned.log_prob, exact.log_prob
            );
            if k == full_width {
                prop_assert_eq!(&pruned, &exact, "full-width TopK must equal exact");
            }
            prev_lp = pruned.log_prob;
        }
    }

    /// Contracts 2 + 3 on the single-chain decoder.
    #[test]
    fn single_chain_top_k_is_monotone_and_bounded_by_exact(
        len in 24usize..60,
        seed in 0u64..10_000,
    ) {
        let ticks = seeded_ticks(len, seed);
        for user in 0..2 {
            let exact = SingleHdbn::new(toy_two_activity_params(false))
                .viterbi(&ticks, user)
                .expect("exact decode");
            let mut prev_lp = f64::NEG_INFINITY;
            for k in 1..=4 {
                let pruned = SingleHdbn::new(toy_two_activity_params(false))
                    .with_decoder(DecoderConfig::top_k(k))
                    .viterbi(&ticks, user)
                    .expect("pruned decode");
                prop_assert!(pruned.log_prob >= prev_lp, "user {} k={}", user, k);
                prop_assert!(pruned.log_prob <= exact.log_prob, "user {} k={}", user, k);
                if k == 4 {
                    prop_assert_eq!(&pruned, &exact, "user {}: full width == exact", user);
                }
                prev_lp = pruned.log_prob;
            }
        }
    }

    /// A widening LogThreshold also never exceeds exact and reaches it
    /// once wide enough.
    #[test]
    fn log_threshold_converges_to_exact(
        len in 24usize..48,
        seed in 0u64..10_000,
    ) {
        let ticks = seeded_ticks(len, seed);
        let exact = CoupledHdbn::new(toy_two_activity_params(true))
            .viterbi(&ticks)
            .expect("exact decode");
        for d in [0.0, 1.0, 4.0, 16.0] {
            let pruned = CoupledHdbn::new(toy_two_activity_params(true))
                .with_decoder(DecoderConfig::log_threshold(d))
                .viterbi(&ticks)
                .expect("pruned decode");
            prop_assert!(pruned.log_prob <= exact.log_prob, "d={}", d);
        }
        let wide = CoupledHdbn::new(toy_two_activity_params(true))
            .with_decoder(DecoderConfig::log_threshold(1e6))
            .viterbi(&ticks)
            .expect("wide decode");
        prop_assert_eq!(&wide, &exact, "unbounded threshold == exact");
    }
}

/// Contract 4: pruned macro accuracy on full simulated sessions stays
/// within a stated bound of exact, while transition work drops by at least
/// the beam's share. Bounds: ≤ 2 pp at TopK(484) (1/16 of the 7744-state
/// C2 frontier), ≤ 5 pp at TopK(121) (1/64).
#[test]
fn pruned_macro_accuracy_stays_within_stated_bounds_of_exact() {
    let (train, test) = tiny_corpus(5, 120, 4242);
    let exact_engine = engine_with(&train, &CaceConfig::default());
    let bound = exact_engine.frontier_bound();
    for (divisor, max_loss) in [(16usize, 0.02f64), (64, 0.05)] {
        let k = (bound / divisor).max(1);
        let pruned_engine = exact_engine.with_decoder(DecoderConfig::top_k(k));
        for (i, session) in test.iter().enumerate() {
            let exact = exact_engine.recognize(session).expect("exact");
            let pruned = pruned_engine.recognize(session).expect("pruned");
            let (acc_e, acc_p) = (exact.accuracy(session), pruned.accuracy(session));
            assert!(
                acc_p >= acc_e - max_loss,
                "TopK({k}) session {i}: accuracy {acc_p} fell more than {max_loss} below exact {acc_e}"
            );
            assert!(
                pruned.transition_ops < exact.transition_ops,
                "TopK({k}) session {i}: pruning must cut transition work"
            );
        }
    }
}

/// The beam composes with macro-candidate restrictions (the correlation
/// pruner's output): a restricted + beamed decode still respects the
/// restriction.
#[test]
fn beam_respects_macro_candidate_restrictions() {
    let mut ticks = toy_glitchy_ticks(20);
    for tick in &mut ticks {
        tick.macro_candidates[0] = Some(vec![1]);
    }
    let path = CoupledHdbn::new(toy_two_activity_params(true))
        .with_decoder(DecoderConfig::top_k(2))
        .viterbi(&ticks)
        .expect("restricted + beamed decode");
    assert!(path.macros[0].iter().all(|&a| a == 1));
}

/// Beam selection edge cases at the decoder level: TopK(0) clamps to 1
/// and still decodes; a zero-width threshold is greedy filtering.
#[test]
fn extreme_beams_still_decode_whole_sessions() {
    let ticks = toy_glitchy_ticks(30);
    for beam in [Beam::TopK(0), Beam::TopK(1), Beam::LogThreshold(0.0)] {
        let path = CoupledHdbn::new(toy_two_activity_params(true))
            .with_decoder(DecoderConfig {
                beam,
                ..DecoderConfig::exact()
            })
            .viterbi(&ticks)
            .expect("extreme beam decode");
        assert_eq!(path.macros[0].len(), ticks.len(), "{beam:?}");
        assert!(path.log_prob.is_finite(), "{beam:?}");
    }
}
