//! Streaming recognition must be a faithful online rendition of the batch
//! engine: with a lag covering the whole session, `StreamingRecognizer` is
//! bit-identical to `CaceEngine::recognize` — decoded macros *and* the
//! deterministic overhead accounting — for every pruning strategy, and for
//! every decoder beam (the pruned frontier is advanced by the same shared
//! step kernels, so pruning never desynchronizes the two paths).

use proptest::prelude::*;

use cace::behavior::Session;
use cace::core::{
    push_cohort, stream_session, CaceConfig, DecoderConfig, Lag, Strategy, StreamingRecognizer,
};
use cace_testkit::{
    assert_recognitions_identical, engine, engine_with, stream_session_with_parks, tiny_corpus,
};

fn corpus(ticks: usize, seed: u64) -> (Vec<Session>, Vec<Session>) {
    tiny_corpus(4, ticks, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random session shapes × all four strategies: an unbounded-lag
    /// stream reproduces batch recognition bit for bit.
    #[test]
    fn streamed_equals_batch_across_strategies(
        ticks in 45usize..80,
        seed in 0u64..1_000,
    ) {
        let (train, test) = corpus(ticks, seed);
        for strategy in Strategy::ALL {
            let engine = engine(&train, strategy);
            for session in &test {
                let batch = engine.recognize(session).expect("batch recognition");
                let (decisions, streamed) =
                    stream_session(&engine, session, Lag::Unbounded).expect("streamed recognition");
                prop_assert!(decisions.is_empty(), "{strategy}: unbounded lag never emits");
                assert_recognitions_identical(&streamed, &batch, strategy.label());
            }
        }
    }

    /// The same equivalence under pruned decoder beams: whatever the beam
    /// does to the frontier, it does identically to both paths.
    #[test]
    fn pruned_streamed_equals_pruned_batch_across_strategies(
        ticks in 45usize..70,
        seed in 0u64..1_000,
        beam_case in 0u8..3,
    ) {
        let decoder = match beam_case {
            0 => DecoderConfig::top_k(12),
            1 => DecoderConfig::top_k(48),
            _ => DecoderConfig::log_threshold(4.0),
        };
        let (train, test) = corpus(ticks, seed);
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let engine = engine_with(&train, &config);
            for session in &test {
                let batch = engine.recognize(session).expect("pruned batch");
                let (decisions, streamed) =
                    stream_session(&engine, session, Lag::Unbounded).expect("pruned stream");
                prop_assert!(decisions.is_empty());
                assert_recognitions_identical(
                    &streamed,
                    &batch,
                    &format!("{strategy} {decoder:?}"),
                );
            }
        }
    }

    /// Park/resume differential: interrupting the stream with a
    /// park → serialize → rehydrate cycle before *every single* tick (and
    /// once more before finalization) changes nothing — the decision
    /// schedule and the final recognition, overhead counters included, are
    /// bit-identical to the uninterrupted stream. Covers all four
    /// strategies under exact and TopK beams; the `CACE_FAST32=1` CI sweep
    /// replays the same suite on the f32 lane.
    #[test]
    fn park_resume_at_every_tick_is_bit_identical(
        ticks in 40usize..60,
        seed in 0u64..1_000,
        beam_case in 0u8..2,
    ) {
        let decoder = match beam_case {
            0 => DecoderConfig::default(),
            _ => DecoderConfig::top_k(12),
        };
        let (train, test) = corpus(ticks, seed);
        let lag = Lag::Fixed(7);
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let engine = engine_with(&train, &config);
            for session in &test {
                let (want_decisions, want) =
                    stream_session(&engine, session, lag).expect("uninterrupted stream");
                let every_tick: Vec<usize> = (0..=session.len()).collect();
                let (got_decisions, got) =
                    stream_session_with_parks(&engine, session, lag, &every_tick);
                prop_assert_eq!(
                    &got_decisions,
                    &want_decisions,
                    "{} {:?}: parked decision schedule diverged",
                    strategy,
                    decoder
                );
                assert_recognitions_identical(
                    &got,
                    &want,
                    &format!("{strategy} {decoder:?} parked at every tick"),
                );
            }
        }
    }

    /// Fleet-batched stepping differential, at the `push_cohort` layer
    /// (below the router): a cohort of streams sharing one engine and one
    /// observation per tick advances tick-for-tick identically to the same
    /// streams pushed one by one. Covers all four strategies under exact,
    /// wide-TopK (never prunes — stays on the fused kernels) and narrow
    /// TopK (prunes — the cohort must *fall back* per home, and still
    /// match). Every push is accounted batched or fallback exactly once.
    /// The `CACE_FAST32=1` CI sweep replays this suite on the f32 lane,
    /// where both sides share the lane so the identity still holds bit
    /// for bit within the PR 6 tolerance contract.
    #[test]
    fn cohort_pushes_equal_scalar_pushes_across_strategies(
        ticks in 40usize..60,
        seed in 0u64..1_000,
        beam_case in 0u8..3,
    ) {
        let (decoder, may_batch) = match beam_case {
            // Exact and never-pruning wide beams keep uniform frontiers,
            // so the cohort fuses from the second tick on.
            0 => (DecoderConfig::default(), true),
            1 => (DecoderConfig::top_k(100_000), true),
            // A beam narrow enough to actually prune diverges the
            // frontier shapes: the fused pass refuses and every push runs
            // scalar — correctness must not depend on fusing.
            _ => (DecoderConfig::top_k(12), false),
        };
        let (train, test) = corpus(ticks, seed);
        let lag = Lag::Fixed(6);
        let n = 4usize;
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let engine = engine_with(&train, &config);
            for session in &test {
                let mut cohort: Vec<StreamingRecognizer> =
                    (0..n).map(|_| engine.stream(lag)).collect();
                let mut solo: Vec<StreamingRecognizer> =
                    (0..n).map(|_| engine.stream(lag)).collect();
                let mut batched_total = 0usize;
                for tick in &session.ticks {
                    let mut refs: Vec<&mut StreamingRecognizer> =
                        cohort.iter_mut().collect();
                    let outcome = push_cohort(&mut refs, &tick.observed);
                    prop_assert_eq!(
                        outcome.batched + outcome.fallback,
                        n,
                        "{} {:?}: every cohort member is pushed exactly once",
                        strategy,
                        decoder
                    );
                    batched_total += outcome.batched;
                    for (i, (got, s)) in
                        outcome.results.into_iter().zip(&mut solo).enumerate()
                    {
                        let want = s.push(&tick.observed).expect("scalar push");
                        prop_assert_eq!(
                            got.expect("cohort push"),
                            want,
                            "{} {:?}: member {} decision diverged",
                            strategy,
                            decoder,
                            i
                        );
                    }
                }
                if may_batch {
                    prop_assert!(
                        batched_total > 0,
                        "{strategy} {decoder:?}: a uniform cohort must fuse"
                    );
                }
                for (i, (c, s)) in cohort.into_iter().zip(solo).enumerate() {
                    assert_recognitions_identical(
                        &c.finish().expect("cohort finish"),
                        &s.finish().expect("scalar finish"),
                        &format!("{strategy} {decoder:?} cohort member {i}"),
                    );
                }
            }
        }
    }
}

#[test]
fn single_park_at_each_position_matches_the_uninterrupted_stream() {
    // The proptest above chains a park cycle before every tick; this test
    // isolates each position instead — one park per run — so a defect that
    // only corrupts state several ticks *after* a resume still pins the
    // exact park position that planted it.
    let (train, test) = corpus(40, 3);
    let lag = Lag::Fixed(7);
    for strategy in Strategy::ALL {
        let engine = engine(&train, strategy);
        let session = &test[0];
        let (want_decisions, want) =
            stream_session(&engine, session, lag).expect("uninterrupted stream");
        for park_at in 0..=session.len() {
            let (got_decisions, got) = stream_session_with_parks(&engine, session, lag, &[park_at]);
            assert_eq!(
                got_decisions, want_decisions,
                "{strategy}: decisions diverged after a park at tick {park_at}"
            );
            assert_recognitions_identical(
                &got,
                &want,
                &format!("{strategy} single park at {park_at}"),
            );
        }
    }
}

#[test]
fn park_resume_composes_with_unbounded_lag_and_batch() {
    // Unbounded lag defers every decision to finalization, so the whole
    // trellis survives the park cycles; the resumed stream must still land
    // exactly on the batch answer.
    let (train, test) = corpus(50, 21);
    for strategy in Strategy::ALL {
        let engine = engine(&train, strategy);
        let session = &test[0];
        let batch = engine.recognize(session).expect("batch recognition");
        let every_tick: Vec<usize> = (0..=session.len()).collect();
        let (decisions, streamed) =
            stream_session_with_parks(&engine, session, Lag::Unbounded, &every_tick);
        assert!(
            decisions.is_empty(),
            "{strategy}: unbounded lag never emits"
        );
        assert_recognitions_identical(&streamed, &batch, strategy.label());
    }
}

#[test]
fn finite_lag_covering_the_session_is_also_bit_identical() {
    let (train, test) = corpus(70, 42);
    for strategy in Strategy::ALL {
        let engine = engine(&train, strategy);
        let session = &test[0];
        let batch = engine.recognize(session).expect("batch recognition");
        // lag == session length: no decision ever ripens mid-stream, so the
        // decode is the full-trellis backtrack — identical to batch.
        let (decisions, streamed) = stream_session(&engine, session, Lag::Fixed(session.len()))
            .expect("streamed recognition");
        assert!(decisions.is_empty(), "{strategy}: lag >= len never emits");
        assert_recognitions_identical(&streamed, &batch, strategy.label());
    }
}

#[test]
fn short_lag_emits_a_decision_per_ripened_tick_for_every_strategy() {
    let (train, test) = corpus(60, 7);
    let lag = 5;
    for strategy in Strategy::ALL {
        let engine = engine(&train, strategy);
        let session = &test[0];
        let (decisions, streamed) =
            stream_session(&engine, session, Lag::Fixed(lag)).expect("streamed recognition");
        assert_eq!(
            decisions.len(),
            session.len() - lag,
            "{strategy}: one decision per tick past the lag horizon"
        );
        for (i, d) in decisions.iter().enumerate() {
            assert_eq!(d.tick, i, "{strategy}: decisions arrive in tick order");
        }
        // The final path embeds every already-emitted decision unchanged.
        for d in &decisions {
            assert_eq!(streamed.macros[0][d.tick], d.macros[0], "{strategy}");
            assert_eq!(streamed.macros[1][d.tick], d.macros[1], "{strategy}");
        }
        assert_eq!(streamed.macros[0].len(), session.len(), "{strategy}");
    }
}

#[test]
fn short_lag_emits_on_schedule_under_a_pruned_beam_too() {
    let (train, test) = corpus(60, 8);
    let lag = 5;
    let config = CaceConfig::default().with_decoder(DecoderConfig::top_k(16));
    let engine = engine_with(&train, &config);
    let session = &test[0];
    let (decisions, streamed) =
        stream_session(&engine, session, Lag::Fixed(lag)).expect("pruned fixed-lag stream");
    assert_eq!(decisions.len(), session.len() - lag);
    for d in &decisions {
        assert_eq!(streamed.macros[0][d.tick], d.macros[0]);
        assert_eq!(streamed.macros[1][d.tick], d.macros[1]);
    }
}

#[test]
fn short_lag_accuracy_stays_close_to_batch() {
    let (train, test) = corpus(80, 99);
    let engine = engine(&train, Strategy::CorrelationConstraint);
    let session = &test[0];
    let batch = engine.recognize(session).expect("batch recognition");
    let batch_acc = batch.accuracy(session);
    let (_, streamed) =
        stream_session(&engine, session, Lag::Fixed(10)).expect("streamed recognition");
    let stream_acc = streamed.accuracy(session);
    // Fixed-lag smoothing trades a bounded amount of accuracy for bounded
    // latency; with a 10-tick lag the delta should be small.
    assert!(
        batch_acc - stream_acc <= 0.10,
        "lag-10 accuracy {stream_acc} fell too far below batch {batch_acc}"
    );
}
