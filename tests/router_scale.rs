//! Serving-tier contract for the sharded router: the fleet front end must
//! be a *transparent* multiplexer. However homes are sharded, however the
//! LRU live cap parks and rehydrates them, every home's decision schedule
//! and final recognition are bit-identical to a dedicated
//! `StreamingRecognizer` fed the same ticks — and a home whose parked
//! bytes rot is quarantined without panicking or disturbing shard-mates.
//!
//! CI runs this file under both `RAYON_NUM_THREADS=1` and `=4`: every
//! assertion here compares against a sequential per-home reference, so the
//! suite doubles as the thread-count-invariance gate (the shard grid is a
//! pure function of home id, never of core count).

use std::sync::Arc;

use proptest::prelude::*;

use cace::behavior::{ObservedTick, Session};
use cace::core::{
    stream_session, CaceConfig, CaceEngine, DecoderConfig, HomeRound, HomeStatus, Lag,
    ShardedRouter, Strategy, StreamDecision, StreamRouter,
};
use cace::model::ModelError;
use cace_testkit::{assert_recognitions_identical, engine, engine_with, tiny_corpus};

const MODEL: &str = "cace";

fn fleet(ticks: usize, seed: u64) -> (Arc<CaceEngine>, Vec<Session>) {
    let (train, test) = tiny_corpus(6, ticks, seed);
    (
        Arc::new(engine(&train, Strategy::CorrelationConstraint)),
        test,
    )
}

/// A router pre-registered with `engine` and `homes.len()` live homes,
/// home `i` getting id `homes[i]`.
fn router_with_homes(
    engine: &Arc<CaceEngine>,
    homes: &[u64],
    lag: Lag,
    shards: usize,
    live_cap: Option<usize>,
) -> ShardedRouter {
    let mut router = ShardedRouter::with_shards(shards);
    if let Some(cap) = live_cap {
        router = router.with_live_cap(cap);
    }
    router.register_model(MODEL, Arc::clone(engine)).unwrap();
    for &id in homes {
        router.add_home(id, MODEL, lag).unwrap();
    }
    router
}

/// Feeds each home its session tick-by-tick in interleaved rounds and
/// collects the per-home decision schedules. Panics on any `Failed` /
/// `Quarantined` outcome — the healthy-path tests want faults loud.
fn drive(router: &mut ShardedRouter, homes: &[(u64, &Session)]) -> Vec<(u64, Vec<StreamDecision>)> {
    let mut decisions: Vec<(u64, Vec<StreamDecision>)> =
        homes.iter().map(|(id, _)| (*id, Vec::new())).collect();
    let max_ticks = homes.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for t in 0..max_ticks {
        let round: Vec<(u64, &ObservedTick)> = homes
            .iter()
            .filter(|(_, s)| t < s.len())
            .map(|(id, s)| (*id, &s.ticks[t].observed))
            .collect();
        let outcomes = router.push_round(&round).expect("all ids are routed");
        for ((id, _), outcome) in round.iter().zip(outcomes) {
            match outcome {
                HomeRound::Advanced(Some(d)) => decisions
                    .iter_mut()
                    .find(|(h, _)| h == id)
                    .expect("home is tracked")
                    .1
                    .push(d),
                HomeRound::Advanced(None) => {}
                other => panic!("home {id}: unexpected round outcome {other:?}"),
            }
        }
    }
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole scale contract, shrunk to proptest size: a router with
    /// an LRU cap far below the home count (so every round parks and
    /// rehydrates someone) produces, for every home, decisions and final
    /// recognition bit-identical to an uncapped router *and* to a
    /// dedicated per-home stream.
    #[test]
    fn capped_router_is_bit_identical_to_dedicated_streams(
        ticks in 40usize..60,
        seed in 0u64..1_000,
        shards in 1usize..5,
    ) {
        let (engine, test) = fleet(ticks, seed);
        let lag = Lag::Fixed(6);
        // More homes than test sessions: reuse sessions across ids so the
        // LRU has genuinely interchangeable victims.
        let homes: Vec<(u64, &Session)> = (0..8u64)
            .map(|i| (i * 97 + 13, &test[i as usize % test.len()]))
            .collect();
        let ids: Vec<u64> = homes.iter().map(|(id, _)| *id).collect();

        let mut capped = router_with_homes(&engine, &ids, lag, shards, Some(2));
        let mut uncapped = router_with_homes(&engine, &ids, lag, shards, None);
        let capped_decisions = drive(&mut capped, &homes);
        let uncapped_decisions = drive(&mut uncapped, &homes);
        prop_assert_eq!(&capped_decisions, &uncapped_decisions);

        let stats = capped.stats();
        if homes.len() > 2 * shards {
            prop_assert!(stats.parks() > 0, "cap below home count must park");
            prop_assert!(stats.rehydrations() > 0, "parked homes must rehydrate");
        }
        prop_assert_eq!(stats.quarantined_homes(), 0);

        let capped_final = capped.finish();
        let uncapped_final = uncapped.finish();
        for (((id, session), (cid, capped_rec)), (uid, uncapped_rec)) in
            { let mut h = homes.clone(); h.sort_by_key(|(id, _)| *id); h }
                .into_iter()
                .zip(capped_final)
                .zip(uncapped_final)
        {
            prop_assert_eq!(id, cid);
            prop_assert_eq!(id, uid);
            let capped_rec = capped_rec.expect("healthy home finishes");
            let uncapped_rec = uncapped_rec.expect("healthy home finishes");
            let (want_decisions, want) =
                stream_session(&engine, session, lag).expect("dedicated stream");
            let got = &capped_decisions
                .iter()
                .find(|(h, _)| *h == id)
                .expect("home is tracked")
                .1;
            prop_assert_eq!(got, &want_decisions, "home {}: routed decisions", id);
            assert_recognitions_identical(&capped_rec, &want, &format!("home {id} capped"));
            assert_recognitions_identical(&uncapped_rec, &want, &format!("home {id} uncapped"));
        }
    }

    /// Same fleet, same rounds, two router instances: eviction order is a
    /// deterministic function of push order alone, so the two runs agree
    /// on every home's live/parked status and on the park/rehydration
    /// counters after every round.
    #[test]
    fn lru_eviction_is_deterministic(
        ticks in 30usize..45,
        seed in 0u64..1_000,
    ) {
        let (engine, test) = fleet(ticks, seed);
        let lag = Lag::Fixed(6);
        let homes: Vec<(u64, &Session)> = (0..6u64)
            .map(|i| (i * 31 + 5, &test[i as usize % test.len()]))
            .collect();
        let ids: Vec<u64> = homes.iter().map(|(id, _)| *id).collect();
        let mut a = router_with_homes(&engine, &ids, lag, 2, Some(1));
        let mut b = router_with_homes(&engine, &ids, lag, 2, Some(1));
        let max_ticks = homes.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
        for t in 0..max_ticks {
            let round: Vec<(u64, &ObservedTick)> = homes
                .iter()
                .filter(|(_, s)| t < s.len())
                .map(|(id, s)| (*id, &s.ticks[t].observed))
                .collect();
            a.push_round(&round).expect("routed");
            b.push_round(&round).expect("routed");
            for &id in &ids {
                prop_assert_eq!(
                    a.home_status(id),
                    b.home_status(id),
                    "home {} status diverged after round {}",
                    id,
                    t
                );
            }
            // Compare the deterministic counters field by field —
            // `push_nanos` is wall time and legitimately differs.
            for (sa, sb) in a.stats().shards.iter().zip(b.stats().shards.iter()) {
                prop_assert_eq!(sa.live_homes, sb.live_homes);
                prop_assert_eq!(sa.parked_homes, sb.parked_homes);
                prop_assert_eq!(sa.quarantined_homes, sb.quarantined_homes);
                prop_assert_eq!(sa.parks, sb.parks);
                prop_assert_eq!(sa.rehydrations, sb.rehydrations);
                prop_assert_eq!(sa.pushes, sb.pushes);
            }
        }
        prop_assert_eq!(a.stats().quarantined_homes(), 0);
    }

    /// PR 10 fleet-batching contract: a router whose rounds share tick
    /// references (so every shard fuses its homes into `(model, tick)`
    /// cohorts) produces decision schedules and final recognitions
    /// bit-identical to dedicated per-home streams, for all four
    /// strategies under exact and wide-TopK beams — and actually batches.
    /// The `CACE_FAST32=1` CI sweep replays the same assertions on the
    /// f32 lane (router and reference share one engine, so bit-identity
    /// holds within either lane).
    #[test]
    fn batched_cohorts_are_bit_identical_to_dedicated_streams(
        ticks in 36usize..48,
        seed in 0u64..1_000,
        beam_case in 0u8..2,
    ) {
        let decoder = match beam_case {
            0 => DecoderConfig::default(),
            // Wide enough to never prune, so the beam stays batchable.
            _ => DecoderConfig::top_k(100_000),
        };
        let (train, test) = tiny_corpus(6, ticks, seed);
        let lag = Lag::Fixed(6);
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let engine = Arc::new(engine_with(&train, &config));
            let homes: Vec<(u64, &Session)> = (0..8u64)
                .map(|i| (i * 17 + 3, &test[i as usize % test.len()]))
                .collect();
            let ids: Vec<u64> = homes.iter().map(|(id, _)| *id).collect();
            let mut router = router_with_homes(&engine, &ids, lag, 2, None);
            let decisions = drive(&mut router, &homes);

            let stats = router.stats();
            prop_assert!(
                stats.batched_pushes() > 0,
                "{}: shared-tick rounds must fuse cohorts",
                strategy
            );
            prop_assert_eq!(
                stats.pushes(),
                stats.batched_pushes() + stats.fallback_pushes(),
                "every push is batched or fallback, exactly once"
            );

            for (id, result) in router.finish() {
                let session = homes.iter().find(|(h, _)| *h == id).expect("tracked").1;
                let (want_decisions, want) =
                    stream_session(&engine, session, lag).expect("dedicated stream");
                let got = &decisions
                    .iter()
                    .find(|(h, _)| *h == id)
                    .expect("home is tracked")
                    .1;
                prop_assert_eq!(got, &want_decisions, "{}: home {} decisions", strategy, id);
                assert_recognitions_identical(
                    &result.expect("healthy home finishes"),
                    &want,
                    &format!("{strategy} home {id} batched vs dedicated"),
                );
            }
        }
    }
}

#[test]
fn tampered_parked_bytes_quarantine_the_home_without_panicking() {
    let (engine, test) = fleet(50, 11);
    let lag = Lag::Fixed(6);
    let session = &test[0];
    let mut router = router_with_homes(&engine, &[1, 2], lag, 1, None);

    // Warm both homes, then park home 1 and corrupt its bytes in place
    // via the export/import handover path.
    for t in 0..10 {
        router
            .push_round(&[
                (1, &session.ticks[t].observed),
                (2, &session.ticks[t].observed),
            ])
            .unwrap();
    }
    let bytes = router.export_home(1).unwrap();
    assert_eq!(router.home_status(1), Some(HomeStatus::Parked));
    let mut rotten = ShardedRouter::with_shards(1);
    rotten.register_model(MODEL, Arc::clone(&engine)).unwrap();
    // Three corruption shapes: a flipped payload byte (checksum mismatch),
    // truncation (header parse failure), and structural junk with a valid
    // shape but the wrong kind. None may panic; all must quarantine.
    let flipped = {
        let mut b = bytes.clone().into_bytes();
        let last = b.len() - 2;
        b[last] = b[last].wrapping_add(1);
        String::from_utf8(b).unwrap()
    };
    rotten.import_home(10, MODEL, flipped).unwrap();
    rotten
        .import_home(11, MODEL, bytes[..bytes.len() / 2].to_string())
        .unwrap();
    rotten
        .import_home(12, MODEL, engine.to_snapshot_string())
        .unwrap();
    // A healthy shard-mate sharing the single shard with all three.
    rotten.import_home(13, MODEL, bytes).unwrap();

    let tick = &session.ticks[10].observed;
    let outcomes = rotten
        .push_round(&[(10, tick), (11, tick), (12, tick), (13, tick)])
        .unwrap();
    for (id, outcome) in [10u64, 11, 12].iter().zip(&outcomes) {
        assert!(
            matches!(outcome, HomeRound::Failed(ModelError::Persistence { .. })),
            "home {id}: expected a persistence failure, got {outcome:?}"
        );
        assert_eq!(rotten.home_status(*id), Some(HomeStatus::Quarantined));
    }
    assert!(
        matches!(outcomes[3], HomeRound::Advanced(_)),
        "healthy shard-mate must keep advancing"
    );

    // Later rounds skip the quarantined homes; the shard-mate still works.
    let outcomes = rotten
        .push_round(&[(10, tick), (13, &session.ticks[11].observed)])
        .unwrap();
    assert!(matches!(outcomes[0], HomeRound::Quarantined));
    assert!(matches!(outcomes[1], HomeRound::Advanced(_)));

    let quarantined = rotten.quarantined();
    assert_eq!(
        quarantined.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        vec![10, 11, 12]
    );
    let finals = rotten.finish();
    for (id, result) in finals {
        if id == 13 {
            result.expect("healthy home finishes");
        } else {
            assert!(
                matches!(result, Err(ModelError::Persistence { .. })),
                "home {id}"
            );
        }
    }
}

#[test]
fn duplicate_home_ids_are_rejected_by_both_router_tiers() {
    let (engine, _) = fleet(30, 4);

    let mut sharded = ShardedRouter::new();
    sharded.register_model(MODEL, Arc::clone(&engine)).unwrap();
    sharded.add_home(7, MODEL, Lag::Fixed(5)).unwrap();
    assert!(matches!(
        sharded.add_home(7, MODEL, Lag::Fixed(5)),
        Err(ModelError::InvalidConfig(_))
    ));
    assert!(matches!(
        sharded.import_home(7, MODEL, String::new()),
        Err(ModelError::InvalidConfig(_))
    ));
    assert_eq!(sharded.len(), 1);

    let mut flat = StreamRouter::new();
    flat.add_home(7, engine.stream(Lag::Fixed(5))).unwrap();
    assert!(matches!(
        flat.add_home(7, engine.stream(Lag::Fixed(5))),
        Err(ModelError::InvalidConfig(_))
    ));
    assert_eq!(flat.len(), 1);
}

#[test]
fn mid_round_swap_fragments_cohorts_without_changing_decisions() {
    // A model publish lands mid-drive and half the fleet is advanced one
    // extra tick so its homes hot-swap first. The next full round is then
    // *fragmented*: the already-swapped half fuses into cohorts while the
    // lagging half takes the scalar path to swap — batched and swap
    // counters both move in that one round — and every home's decision
    // schedule still matches a dedicated stream bit for bit (the
    // published twin is independently trained on the same corpus, so its
    // parameters are identical and no decision may move).
    let (train, test) = tiny_corpus(6, 50, 13);
    let base = Arc::new(engine(&train, Strategy::CorrelationConstraint));
    let twin = Arc::new(engine(&train, Strategy::CorrelationConstraint));
    let session = &test[0];
    let lag = Lag::Fixed(6);
    let ids: Vec<u64> = (0..8u64).map(|i| i * 13 + 1).collect();
    let mut router = router_with_homes(&base, &ids, lag, 2, None);

    let mut cursors = vec![0usize; ids.len()];
    let mut decisions: Vec<Vec<StreamDecision>> = vec![Vec::new(); ids.len()];
    let advance = |router: &mut ShardedRouter,
                   members: &[usize],
                   cursors: &mut Vec<usize>,
                   decisions: &mut Vec<Vec<StreamDecision>>| {
        let round: Vec<(u64, &ObservedTick)> = members
            .iter()
            .map(|&i| (ids[i], &session.ticks[cursors[i]].observed))
            .collect();
        let outcomes = router.push_round(&round).expect("routed");
        for (&i, outcome) in members.iter().zip(outcomes) {
            match outcome {
                HomeRound::Advanced(Some(d)) => decisions[i].push(d),
                HomeRound::Advanced(None) => {}
                other => panic!("home {}: {other:?}", ids[i]),
            }
            cursors[i] += 1;
        }
    };

    let all: Vec<usize> = (0..ids.len()).collect();
    let front: Vec<usize> = (0..ids.len() / 2).collect();
    for _ in 0..20 {
        advance(&mut router, &all, &mut cursors, &mut decisions);
    }
    assert_eq!(router.publish_model(MODEL, Arc::clone(&twin)).unwrap(), 1);
    // The front half swaps onto generation 1 (scalar path, one swap each).
    advance(&mut router, &front, &mut cursors, &mut decisions);
    let mid = router.stats();
    assert_eq!(mid.swaps(), front.len() as u64);

    // The fragmented round: front homes are current-generation and fuse,
    // back homes lag and go scalar to swap — in the same push_round.
    advance(&mut router, &all, &mut cursors, &mut decisions);
    let frag = router.stats();
    assert!(
        frag.batched_pushes() > mid.batched_pushes(),
        "fragmented round must still fuse the swapped half: {frag:?}"
    );
    assert_eq!(
        frag.swaps(),
        ids.len() as u64,
        "fragmented round must swap the lagging half"
    );

    // Drain every home to the end of the session; cohorts re-form.
    while cursors.iter().any(|&c| c < session.len()) {
        let due: Vec<usize> = (0..ids.len())
            .filter(|&i| cursors[i] < session.len())
            .collect();
        advance(&mut router, &due, &mut cursors, &mut decisions);
    }
    let done = router.stats();
    assert_eq!(
        done.pushes(),
        done.batched_pushes() + done.fallback_pushes()
    );
    assert_eq!(done.quarantined_homes(), 0);

    let (want_decisions, want) = stream_session(&base, session, lag).expect("dedicated stream");
    for (id, result) in router.finish() {
        let i = ids.iter().position(|&h| h == id).expect("tracked");
        assert_eq!(decisions[i], want_decisions, "home {id}: decisions");
        assert_recognitions_identical(
            &result.expect("healthy home finishes"),
            &want,
            &format!("home {id} across the mid-drive swap"),
        );
    }
}

#[test]
fn export_import_handover_preserves_the_stream_exactly() {
    // Mid-session migration: export every home from one router, import
    // into a fresh one (different shard grid), finish there — identical
    // to never having moved.
    let (engine, test) = fleet(50, 29);
    let lag = Lag::Fixed(6);
    let homes: Vec<(u64, &Session)> = (0..4u64)
        .map(|i| (i + 1, &test[i as usize % test.len()]))
        .collect();
    let ids: Vec<u64> = homes.iter().map(|(id, _)| *id).collect();
    let mut old = router_with_homes(&engine, &ids, lag, 4, None);
    let mut new = ShardedRouter::with_shards(2).with_live_cap(1);
    new.register_model(MODEL, Arc::clone(&engine)).unwrap();

    let handover_at = 20;
    let mut decisions: Vec<(u64, Vec<StreamDecision>)> =
        ids.iter().map(|id| (*id, Vec::new())).collect();
    for t in 0..handover_at {
        let round: Vec<(u64, &ObservedTick)> = homes
            .iter()
            .map(|(id, s)| (*id, &s.ticks[t].observed))
            .collect();
        for ((id, _), outcome) in round.iter().zip(old.push_round(&round).unwrap()) {
            if let HomeRound::Advanced(Some(d)) = outcome {
                decisions
                    .iter_mut()
                    .find(|(h, _)| h == id)
                    .unwrap()
                    .1
                    .push(d);
            }
        }
    }
    for &id in &ids {
        let bytes = old.export_home(id).unwrap();
        new.import_home(id, MODEL, bytes).unwrap();
    }
    let max_ticks = homes.iter().map(|(_, s)| s.len()).max().unwrap();
    for t in handover_at..max_ticks {
        let round: Vec<(u64, &ObservedTick)> = homes
            .iter()
            .filter(|(_, s)| t < s.len())
            .map(|(id, s)| (*id, &s.ticks[t].observed))
            .collect();
        for ((id, _), outcome) in round.iter().zip(new.push_round(&round).unwrap()) {
            match outcome {
                HomeRound::Advanced(Some(d)) => decisions
                    .iter_mut()
                    .find(|(h, _)| h == id)
                    .unwrap()
                    .1
                    .push(d),
                HomeRound::Advanced(None) => {}
                other => panic!("home {id}: {other:?}"),
            }
        }
    }
    for (id, result) in new.finish() {
        let session = homes.iter().find(|(h, _)| *h == id).unwrap().1;
        let (want_decisions, want) = stream_session(&engine, session, lag).unwrap();
        let got = &decisions.iter().find(|(h, _)| *h == id).unwrap().1;
        assert_eq!(got, &want_decisions, "home {id}: migrated decisions");
        assert_recognitions_identical(
            &result.expect("migrated home finishes"),
            &want,
            &format!("home {id} after handover"),
        );
    }
}
