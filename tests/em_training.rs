//! EM training guarantees: the log-likelihood trajectory is non-decreasing
//! (up to smoothing/xi-approximation tolerance), the `tol` early stop
//! triggers, and the rayon-parallel E-step is **bit-identical** to a
//! sequential accumulation — the fan-out must never change the numbers.

use std::sync::Arc;

use cace::hdbn::single::ExpectedCounts;
use cace::hdbn::{
    e_step, fit_em, fit_em_shared, EmConfig, HdbnConfig, HdbnParams, MicroCandidate, SingleHdbn,
    TickInput,
};
use cace::mining::constraint::{ConstraintMiner, LabeledSequence};

/// Ground-truth world: activity k ↔ posture/location k, runs of 10 ticks.
fn world_sequence(seed_shift: usize, ticks: usize) -> Vec<TickInput> {
    (0..ticks)
        .map(|t| {
            let m = ((t + seed_shift) / 10) % 2;
            let cands = |fav: usize| -> Vec<MicroCandidate> {
                (0..2)
                    .map(|p| MicroCandidate {
                        postural: p,
                        gestural: Some(0),
                        location: p,
                        obs_loglik: if p == fav { 0.0 } else { -4.0 },
                    })
                    .collect()
            };
            TickInput {
                candidates: [cands(m), cands(m)],
                macro_candidates: [None, None],
                macro_bonus: Vec::new(),
            }
        })
        .collect()
}

/// Weak (heavily smoothed) initial statistics with a faint correct
/// correlation for EM to sharpen.
fn weak_initial() -> HdbnParams {
    let seq = LabeledSequence {
        macros: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
        posturals: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
        gesturals: [vec![0; 6], vec![0; 6]],
        locations: [vec![0, 0, 0, 1, 1, 1], vec![1, 1, 1, 0, 0, 0]],
    };
    let stats = ConstraintMiner {
        laplace: 5.0,
        n_macro: 2,
        n_postural: 2,
        n_gestural: 2,
        n_location: 2,
    }
    .mine(&[seq])
    .unwrap();
    HdbnParams::new(stats, HdbnConfig::uncoupled()).unwrap()
}

fn training_set() -> Vec<Vec<TickInput>> {
    vec![
        world_sequence(0, 60),
        world_sequence(5, 60),
        world_sequence(3, 40),
    ]
}

#[test]
fn log_likelihood_is_non_decreasing_across_iterations() {
    let outcome = fit_em(
        weak_initial(),
        &training_set(),
        &EmConfig {
            max_iters: 8,
            tol: 0.0,
            laplace: 0.3,
        },
    )
    .unwrap();
    assert_eq!(outcome.iterations, 8);
    assert_eq!(outcome.log_likelihoods.len(), 8);
    for pair in outcome.log_likelihoods.windows(2) {
        // EM's exact E-step guarantees monotonicity for the *unsmoothed*
        // objective; the Laplace-smoothed M-step and the gamma-consistent
        // xi approximation can pull the plain log-likelihood down by ~1 %
        // near convergence, so allow that much relative slack.
        let slack = 0.02 * pair[0].abs().max(1.0);
        assert!(
            pair[1] >= pair[0] - slack,
            "log-likelihood decreased: {} -> {} (trajectory {:?})",
            pair[0],
            pair[1],
            outcome.log_likelihoods
        );
    }
    // And it must actually improve overall, not just hold steady.
    let first = outcome.log_likelihoods.first().unwrap();
    let last = outcome.log_likelihoods.last().unwrap();
    assert!(last > first, "no overall improvement: {first} -> {last}");
}

#[test]
fn tolerance_early_stop_triggers_and_reports_true_iteration_count() {
    let outcome = fit_em(
        weak_initial(),
        &training_set(),
        &EmConfig {
            max_iters: 50,
            tol: 0.05,
            laplace: 0.5,
        },
    )
    .unwrap();
    assert!(
        outcome.iterations < 50,
        "loose tolerance must stop early, ran {}",
        outcome.iterations
    );
    assert!(outcome.iterations >= 2, "needs two points to compare");
    assert_eq!(outcome.log_likelihoods.len(), outcome.iterations);
    // The stopping condition held at the recorded last step.
    let n = outcome.iterations;
    let prev = outcome.log_likelihoods[n - 2];
    let cur = outcome.log_likelihoods[n - 1];
    assert!((cur - prev).abs() / prev.abs().max(1.0) < 0.05);
}

fn assert_counts_bit_identical(a: &ExpectedCounts, b: &ExpectedCounts, label: &str) {
    let flat = |c: &ExpectedCounts| -> Vec<u64> {
        c.prior
            .iter()
            .chain(c.cont.iter())
            .chain(c.end.iter())
            .chain(c.trans.iter().flatten())
            .chain(c.post.iter().flatten())
            .chain(c.gest.iter().flatten())
            .chain(c.loc.iter().flatten())
            .chain(c.post_trans.iter().flatten())
            .chain(std::iter::once(&c.log_likelihood))
            .map(|v| v.to_bits())
            .collect()
    };
    assert_eq!(
        flat(a),
        flat(b),
        "{label}: expected counts must match bitwise"
    );
}

#[test]
fn parallel_e_step_is_bit_identical_to_sequential() {
    let sequences = training_set();
    let model = SingleHdbn::new(weak_initial());
    let stats = &model.params().stats;

    // Hand-rolled sequential reference: per-sequence accumulators merged in
    // input order, no rayon involved.
    let mut reference = ExpectedCounts::zeros(
        stats.n_macro,
        stats.n_postural,
        stats.n_gestural,
        stats.n_location,
    );
    for seq in &sequences {
        let mut counts = ExpectedCounts::zeros(
            stats.n_macro,
            stats.n_postural,
            stats.n_gestural,
            stats.n_location,
        );
        for user in 0..2 {
            model.accumulate_counts(seq, user, &mut counts).unwrap();
        }
        reference.merge(&counts);
    }

    // The rayon fan-out path under different worker counts. The env var is
    // read per fan-out by the vendored rayon, so this exercises the real
    // 4-worker chunking.
    for workers in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", workers);
        let parallel = e_step(&model, &sequences).unwrap();
        assert_counts_bit_identical(&parallel, &reference, &format!("{workers} workers"));
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn shared_params_em_matches_owned_params_em() {
    let config = EmConfig {
        max_iters: 4,
        tol: 0.0,
        laplace: 0.4,
    };
    let sequences = training_set();
    let owned = fit_em(weak_initial(), &sequences, &config).unwrap();
    let shared = fit_em_shared(Arc::new(weak_initial()), &sequences, &config).unwrap();
    assert_eq!(owned.iterations, shared.iterations);
    let bits = |lls: &[f64]| lls.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&owned.log_likelihoods), bits(&shared.log_likelihoods));
    assert_eq!(
        serde::json::to_string(&owned.params.stats),
        serde::json::to_string(&shared.params.stats),
        "re-estimated tables must be identical"
    );
}
