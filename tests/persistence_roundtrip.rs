//! Model persistence must be lossless in the only sense that matters for
//! serving: a trained engine saved to disk and reloaded in a fresh
//! "process" (a fresh `CaceEngine` value that never saw the training data)
//! produces **bit-identical** batch and streaming recognition across all
//! four strategies (NH/NCR/NCS/C2), EM-refined parameters included.

use proptest::prelude::*;

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, Session, SessionConfig};
use cace::core::{stream_session, CaceConfig, CaceEngine, Lag, Recognition, Strategy};
use cace::model::ModelError;

fn corpus(ticks: usize, seed: u64) -> (Vec<Session>, Vec<Session>) {
    let sessions = generate_cace_dataset(
        &cace_grammar(),
        1,
        4,
        &SessionConfig::tiny().with_ticks(ticks),
        seed,
    );
    train_test_split(sessions, 0.75)
}

fn assert_identical(reloaded: &Recognition, original: &Recognition, label: &str) {
    assert_eq!(reloaded.macros, original.macros, "{label}: macros");
    assert_eq!(
        reloaded.states_explored, original.states_explored,
        "{label}: states_explored"
    );
    assert_eq!(
        reloaded.transition_ops, original.transition_ops,
        "{label}: transition_ops"
    );
    assert_eq!(
        reloaded.rules_fired, original.rules_fired,
        "{label}: rules_fired"
    );
    assert_eq!(
        reloaded.mean_joint_size.to_bits(),
        original.mean_joint_size.to_bits(),
        "{label}: mean_joint_size"
    );
}

/// Unique-per-case snapshot path in the system temp dir.
fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cace_persistence_roundtrip_{}_{tag}.cace",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random corpus shapes × all four strategies: save → load → recognize
    /// and save → load → stream are bit-identical to the trained engine.
    #[test]
    fn saved_and_loaded_engine_serves_identically(
        ticks in 45usize..70,
        seed in 0u64..1_000,
        em_flag in 0u8..2,
    ) {
        let run_em = em_flag == 1;
        let (train, test) = corpus(ticks, seed);
        for strategy in Strategy::ALL {
            let config = CaceConfig {
                run_em,
                ..CaceConfig::default().with_strategy(strategy)
            };
            let trained = CaceEngine::train(&train, &config).expect("training succeeds");

            let path = snapshot_path(&format!("{strategy}_{ticks}_{seed}"));
            trained.save(&path).expect("snapshot write");
            let reloaded = CaceEngine::load(&path).expect("snapshot read");
            std::fs::remove_file(&path).ok();

            for (i, session) in test.iter().enumerate() {
                let label = format!("{strategy} session {i}");
                // Batch recognition.
                let original = trained.recognize(session).expect("batch on trained");
                let from_disk = reloaded.recognize(session).expect("batch on reloaded");
                assert_identical(&from_disk, &original, &label);

                // Streaming: unbounded lag (bit-identical to batch) and a
                // short fixed lag (mid-stream decisions must agree too).
                for lag in [Lag::Unbounded, Lag::Fixed(5)] {
                    let (decisions_a, streamed_a) =
                        stream_session(&trained, session, lag).expect("stream on trained");
                    let (decisions_b, streamed_b) =
                        stream_session(&reloaded, session, lag).expect("stream on reloaded");
                    prop_assert_eq!(&decisions_a, &decisions_b, "{}: {:?} decisions", &label, lag);
                    assert_identical(&streamed_b, &streamed_a, &format!("{label} {lag:?}"));
                }
            }
        }
    }
}

#[test]
fn snapshot_reload_survives_a_second_generation() {
    // load(save(load(save(e)))) — the persistence layer is idempotent, so a
    // model registry can re-publish a loaded engine without drift.
    let (train, test) = corpus(50, 41);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let gen1 = CaceEngine::from_snapshot_str(&engine.to_snapshot_string()).unwrap();
    let gen2 = CaceEngine::from_snapshot_str(&gen1.to_snapshot_string()).unwrap();
    assert_eq!(
        engine.to_snapshot_string(),
        gen2.to_snapshot_string(),
        "snapshot text must be stable across generations"
    );
    let a = engine.recognize(&test[0]).unwrap();
    let b = gen2.recognize(&test[0]).unwrap();
    assert_identical(&b, &a, "second generation");
}

#[test]
fn tampered_snapshots_are_rejected() {
    let (train, _) = corpus(50, 42);
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();
    let good = engine.to_snapshot_string();

    // Payload tampering → checksum mismatch.
    let tampered = good.replacen("\"beam\":8", "\"beam\":9", 1);
    assert_ne!(tampered, good, "tamper target must exist");
    assert!(matches!(
        CaceEngine::from_snapshot_str(&tampered),
        Err(ModelError::Persistence { .. })
    ));

    // Truncation → checksum mismatch.
    assert!(matches!(
        CaceEngine::from_snapshot_str(&good[..good.len() - 10]),
        Err(ModelError::Persistence { .. })
    ));
}
