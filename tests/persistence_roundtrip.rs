//! Model persistence must be lossless in the only sense that matters for
//! serving: a trained engine saved to disk and reloaded in a fresh
//! "process" (a fresh `CaceEngine` value that never saw the training data)
//! produces **bit-identical** batch and streaming recognition across all
//! four strategies (NH/NCR/NCS/C2), EM-refined parameters and pruned
//! decoder beams included.

use proptest::prelude::*;

use cace::behavior::Session;
use cace::core::{stream_session, CaceConfig, CaceEngine, DecoderConfig, Lag, Strategy};
use cace::model::ModelError;
use cace_testkit::{assert_recognitions_identical, engine_with, tiny_corpus};

fn corpus(ticks: usize, seed: u64) -> (Vec<Session>, Vec<Session>) {
    tiny_corpus(4, ticks, seed)
}

/// Unique-per-case snapshot path in the system temp dir.
fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cace_persistence_roundtrip_{}_{tag}.cace",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random corpus shapes × all four strategies: save → load → recognize
    /// and save → load → stream are bit-identical to the trained engine.
    /// One case in three serves with a pruned decoder beam, which must
    /// survive the round trip exactly (config included).
    #[test]
    fn saved_and_loaded_engine_serves_identically(
        ticks in 45usize..70,
        seed in 0u64..1_000,
        em_flag in 0u8..2,
        beam_case in 0u8..3,
    ) {
        let run_em = em_flag == 1;
        let decoder = match beam_case {
            0 => DecoderConfig::exact(),
            1 => DecoderConfig::top_k(24),
            _ => DecoderConfig::log_threshold(5.0),
        };
        let (train, test) = corpus(ticks, seed);
        for strategy in Strategy::ALL {
            let config = CaceConfig {
                run_em,
                ..CaceConfig::default()
                    .with_strategy(strategy)
                    .with_decoder(decoder)
            };
            let trained = engine_with(&train, &config);

            let path = snapshot_path(&format!("{strategy}_{ticks}_{seed}_{beam_case}"));
            trained.save(&path).expect("snapshot write");
            let reloaded = CaceEngine::load(&path).expect("snapshot read");
            std::fs::remove_file(&path).ok();

            // The decoder settings round-trip verbatim. (Compared against
            // the engine's own config, not the `decoder` literal: the
            // `CACE_FAST32=1` sweep flips the trained precision, and the
            // flipped lane must round-trip too.)
            prop_assert_eq!(
                reloaded.config().decoder,
                trained.config().decoder,
                "{}: decoder config",
                strategy
            );

            for (i, session) in test.iter().enumerate() {
                let label = format!("{strategy} {decoder:?} session {i}");
                // Batch recognition.
                let original = trained.recognize(session).expect("batch on trained");
                let from_disk = reloaded.recognize(session).expect("batch on reloaded");
                assert_recognitions_identical(&from_disk, &original, &label);

                // Streaming: unbounded lag (bit-identical to batch) and a
                // short fixed lag (mid-stream decisions must agree too).
                for lag in [Lag::Unbounded, Lag::Fixed(5)] {
                    let (decisions_a, streamed_a) =
                        stream_session(&trained, session, lag).expect("stream on trained");
                    let (decisions_b, streamed_b) =
                        stream_session(&reloaded, session, lag).expect("stream on reloaded");
                    prop_assert_eq!(&decisions_a, &decisions_b, "{}: {:?} decisions", &label, lag);
                    assert_recognitions_identical(&streamed_b, &streamed_a, &format!("{label} {lag:?}"));
                }
            }
        }
    }
}

#[test]
fn snapshot_reload_survives_a_second_generation() {
    // load(save(load(save(e)))) — the persistence layer is idempotent, so a
    // model registry can re-publish a loaded engine without drift.
    let (train, test) = corpus(50, 41);
    let engine = engine_with(&train, &CaceConfig::default());
    let gen1 = CaceEngine::from_snapshot_str(&engine.to_snapshot_string()).unwrap();
    let gen2 = CaceEngine::from_snapshot_str(&gen1.to_snapshot_string()).unwrap();
    assert_eq!(
        engine.to_snapshot_string(),
        gen2.to_snapshot_string(),
        "snapshot text must be stable across generations"
    );
    let a = engine.recognize(&test[0]).unwrap();
    let b = gen2.recognize(&test[0]).unwrap();
    assert_recognitions_identical(&b, &a, "second generation");
}

#[test]
fn pruned_decoder_config_round_trips_through_the_snapshot_text() {
    let (train, _) = corpus(50, 43);
    for decoder in [
        DecoderConfig::exact(),
        DecoderConfig::top_k(7),
        DecoderConfig::log_threshold(2.5),
    ] {
        let engine = engine_with(&train, &CaceConfig::default().with_decoder(decoder));
        let reloaded = CaceEngine::from_snapshot_str(&engine.to_snapshot_string()).unwrap();
        // Against the engine's own config, not the literal: the
        // `CACE_FAST32=1` sweep flips the trained precision, which must
        // round-trip too.
        assert_eq!(
            reloaded.config().decoder,
            engine.config().decoder,
            "{decoder:?}"
        );
    }
}

#[test]
fn tampered_snapshots_are_rejected() {
    let (train, _) = corpus(50, 42);
    let engine = engine_with(&train, &CaceConfig::default());
    let good = engine.to_snapshot_string();

    // Payload tampering → checksum mismatch.
    let tampered = good.replacen("\"beam\":8", "\"beam\":9", 1);
    assert_ne!(tampered, good, "tamper target must exist");
    assert!(matches!(
        CaceEngine::from_snapshot_str(&tampered),
        Err(ModelError::Persistence { .. })
    ));

    // Truncation → checksum mismatch.
    assert!(matches!(
        CaceEngine::from_snapshot_str(&good[..good.len() - 10]),
        Err(ModelError::Persistence { .. })
    ));
}
