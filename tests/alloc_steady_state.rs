//! Steady-state allocation accounting for the online decoders (PR 5).
//!
//! The `TrellisArena` + pooled-window design promises that a *warmed*
//! streaming push — slice fill, DP step, beam selection, fixed-lag emit —
//! performs **zero heap allocations per tick**, for the exact decoder and
//! under an actively-pruning `TopK` beam alike. This suite counts every
//! allocator call (alloc / realloc / alloc_zeroed) through a wrapping
//! global allocator with a per-thread counter, warms each decoder past its
//! high-water buffer sizes, then drives another window of pushes and
//! asserts the count stayed at zero.
//!
//! The decision history (`emitted_*`) grows by one entry per tick and is
//! the only amortized allocation left in the loop; `reserve_ticks`
//! pre-sizes it, which is what a serving loop with a known session length
//! would do (and what keeps this assertion exact rather than probabilistic
//! about `Vec` growth boundaries).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use cace::hdbn::{
    Beam, CoupledHdbn, DecoderConfig, Lag, OnlineCoupledViterbi, OnlineSingleViterbi, SingleHdbn,
    TickInput,
};
use cace_testkit::{toy_glitchy_ticks, toy_two_activity_params};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

/// Wraps the system allocator, counting allocations made while the
/// current thread has counting enabled. Thread-local so the other tests
/// in this binary (and the harness itself) don't pollute the counter.
struct CountingAlloc;

impl CountingAlloc {
    fn record() {
        // `try_with` so allocations during TLS teardown can't panic.
        let _ = COUNTING.try_with(|on| {
            if on.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting on, returning the number of
/// allocator calls it made on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|c| c.set(0));
    COUNTING.with(|on| on.set(true));
    f();
    COUNTING.with(|on| on.set(false));
    ALLOCS.with(|c| c.get())
}

const WARMUP: usize = 64;
const MEASURED: usize = 64;

fn decoder_configs() -> [(&'static str, DecoderConfig); 2] {
    // The toy coupled frontier is 16 joint states (single: 4), so TopK(4)
    // (TopK(2) for single) genuinely prunes every tick — the pruned
    // kernels and survivor selection are in the measured loop.
    [
        ("exact", DecoderConfig::exact()),
        ("topk", DecoderConfig::top_k(4)),
    ]
}

fn stream_ticks() -> Vec<TickInput> {
    toy_glitchy_ticks(WARMUP + MEASURED)
}

#[test]
fn warmed_coupled_stream_push_allocates_nothing() {
    for (label, decoder) in decoder_configs() {
        let model = CoupledHdbn::new(toy_two_activity_params(true)).with_decoder(decoder);
        let ticks = stream_ticks();
        let mut online = OnlineCoupledViterbi::new(model, Lag::Fixed(5));
        online.reserve_ticks(WARMUP + MEASURED);
        for tick in &ticks[..WARMUP] {
            online.push(tick).expect("warmup push");
        }
        let allocs = count_allocs(|| {
            for tick in &ticks[WARMUP..] {
                online.push(tick).expect("measured push");
            }
        });
        assert_eq!(
            allocs, 0,
            "{label}: warmed coupled push must be allocation-free \
             ({allocs} allocations over {MEASURED} ticks)"
        );
        // The stream is still correct after the measured window.
        let path = online.finalize().expect("finalize");
        assert_eq!(path.macros[0].len(), WARMUP + MEASURED);
    }
}

#[test]
fn warmed_single_stream_push_allocates_nothing() {
    for (label, decoder) in [
        ("exact", DecoderConfig::exact()),
        ("topk", DecoderConfig::top_k(2)),
    ] {
        let model = SingleHdbn::new(toy_two_activity_params(false)).with_decoder(decoder);
        let ticks = stream_ticks();
        let mut online = OnlineSingleViterbi::new(model, 0, Lag::Fixed(5));
        online.reserve_ticks(WARMUP + MEASURED);
        for tick in &ticks[..WARMUP] {
            online.push(tick).expect("warmup push");
        }
        let allocs = count_allocs(|| {
            for tick in &ticks[WARMUP..] {
                online.push(tick).expect("measured push");
            }
        });
        assert_eq!(
            allocs, 0,
            "{label}: warmed single-chain push must be allocation-free \
             ({allocs} allocations over {MEASURED} ticks)"
        );
        let path = online.finalize().expect("finalize");
        assert_eq!(path.macros.len(), WARMUP + MEASURED);
    }
}

/// The TopK beams above genuinely prune (strict subset survives), so the
/// zero-allocation claim covers the pruned kernels, not just the dense
/// ones.
#[test]
fn topk_cases_actually_prune_in_steady_state() {
    let mut scratch = cace::hdbn::BeamScratch::new();
    let model = CoupledHdbn::new(toy_two_activity_params(true));
    let ticks = stream_ticks();
    let path = model.viterbi(&ticks).expect("decode");
    // 16-state joint frontier vs TopK(4): selection must report pruning.
    let frontier: Vec<f64> = (0..16).map(|i| -(i as f64)).collect();
    assert!(Beam::TopK(4).select_log(&frontier, &mut scratch));
    assert_eq!(scratch.keep().len(), 4);
    assert!(path.log_prob.is_finite());
}
