//! Tolerance suite for the `f32` fast scoring lane (PR 6).
//!
//! Contract: [`Precision::Fast32`] is an *approximate* lane — unlike the
//! bit-identity suites in `tests/score_tables.rs`, the properties here
//! bound its divergence from the exact `f64` lane instead of forbidding
//! it. Three layers:
//!
//! 1. **Table entries** — every `f32` mirror entry tracks its `f64`
//!    source within cast rounding; `−∞` structure (switch diagonal,
//!    impossible transitions) is preserved exactly, and no finite score
//!    is flushed to `−∞` or `NaN` by the cast.
//! 2. **Degenerate statistics** — deeply clamped `log_end` /
//!    `log_continue` boundaries (vanishing Laplace mass, probabilities
//!    down in the `f64` subnormal range whose logs reach ≈ −745) decode
//!    without `NaN` or spurious `−∞` in either lane.
//! 3. **Fig 9 workload** — on the CASAS-style corpus the fast lane must
//!    agree with the exact lane on ≥ 99% of per-tick macro decisions and
//!    stay within 0.1 pp macro-averaged accuracy
//!    ([`cace_testkit::assert_lane_tolerance`]).

use proptest::prelude::*;

use cace::behavior::session::train_test_split;
use cace::behavior::{generate_casas_dataset, CasasConfig};
use cace::core::{CaceConfig, DecoderConfig, Recognition, Strategy};
use cace::hdbn::{CoupledHdbn, HdbnConfig, HdbnParams, MicroCandidate, Scalar, TickInput};
use cace::mining::constraint::{ConstraintMiner, LabeledSequence};
use cace_testkit::{assert_lane_tolerance, engine_with};

/// Deterministic xorshift for data generation inside a property.
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    fn f64(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10_000.0
    }
}

/// Random mined statistics over a small random vocabulary (the
/// `tests/score_tables.rs` generator, with the Laplace mass injectable so
/// the degenerate-boundary properties can drive it toward zero).
fn random_params(rng: &mut Rng, config: HdbnConfig, laplace: f64) -> HdbnParams {
    let n_macro = 2 + rng.below(2); // 2..=3
    let n_postural = 2 + rng.below(2);
    let n_gestural = 2;
    let n_location = 2 + rng.below(2);
    let len = 60 + rng.below(60);
    let mut seq = LabeledSequence::default();
    for u in 0..2 {
        let mut run = rng.below(n_macro);
        for t in 0..len {
            if t % (5 + rng.below(10)) == 0 {
                run = rng.below(n_macro);
            }
            seq.macros[u].push(run);
            seq.posturals[u].push(rng.below(n_postural));
            seq.gesturals[u].push(rng.below(n_gestural));
            seq.locations[u].push(rng.below(n_location));
        }
    }
    let stats = ConstraintMiner {
        laplace,
        n_macro,
        n_postural,
        n_gestural,
        n_location,
    }
    .mine(&[seq])
    .expect("random stats mine");
    HdbnParams::new(stats, config).expect("random params build")
}

/// Random tick stream over the params' vocabulary (same shape as the
/// score-table differential suite).
fn random_ticks(rng: &mut Rng, p: &HdbnParams, len: usize) -> Vec<TickInput> {
    let stats = &p.stats;
    let use_gestural = rng.below(2) == 0;
    (0..len)
        .map(|_| {
            let mut tick = TickInput::default();
            for u in 0..2 {
                let n_cand = 1 + rng.below(3);
                tick.candidates[u] = (0..n_cand)
                    .map(|_| MicroCandidate {
                        postural: rng.below(stats.n_postural),
                        gestural: if use_gestural {
                            Some(rng.below(stats.n_gestural))
                        } else {
                            None
                        },
                        location: rng.below(stats.n_location),
                        obs_loglik: -6.0 * rng.f64(),
                    })
                    .collect();
            }
            tick
        })
        .collect()
}

/// The configuration extremes the mirror must be correct under.
fn configs() -> Vec<HdbnConfig> {
    vec![
        HdbnConfig::default(),
        HdbnConfig::uncoupled(),
        HdbnConfig {
            coupling_weight: 4.0,
            hierarchy_weight: 0.0,
            persistence_bonus: 0.0,
        },
        HdbnConfig {
            coupling_weight: 0.0,
            hierarchy_weight: 3.0,
            persistence_bonus: 0.9,
        },
    ]
}

/// Asserts one `f32` mirror entry against its `f64` source: `−∞` maps to
/// `−∞`, finite maps to finite within `f32` cast rounding (relative
/// 2⁻²⁴-ish, with an absolute floor for near-zero log scores).
fn assert_entry_tracks(fast: f32, exact: f64, what: &str) {
    if exact == f64::NEG_INFINITY {
        assert_eq!(fast, f32::NEG_INFINITY, "{what}: -inf not preserved");
        return;
    }
    assert!(exact.is_finite(), "{what}: f64 table holds {exact}");
    assert!(
        fast.is_finite(),
        "{what}: finite f64 {exact} flushed to {fast}"
    );
    let err = (f64::from(fast) - exact).abs();
    let bound = exact.abs().max(1.0) * 1e-6;
    assert!(
        err <= bound,
        "{what}: |{fast} - {exact}| = {err:e} > {bound:e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Mirror contract: every `f32` table entry — transition kernel (both
    /// orientations via the public accessor), coupling, hierarchy with and
    /// without the gestural modality — tracks its `f64` source within cast
    /// rounding, across config extremes. `−∞` structure survives exactly
    /// and nothing finite is flushed.
    #[test]
    fn f32_table_entries_track_f64_within_cast_error(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        for config in configs() {
            let laplace = 0.05 + rng.f64();
            let p = random_params(&mut rng, config, laplace);
            let t64 = &p.tables;
            let t32 = p.tables_f32();
            let stats = &p.stats;
            for ap in 0..stats.n_macro {
                for pp in 0..stats.n_postural {
                    for a in 0..stats.n_macro {
                        for pn in 0..stats.n_postural {
                            let src64 = t64.pair(ap, pp);
                            let dst64 = t64.pair(a, pn);
                            prop_assert_eq!(src64, t32.pair(ap, pp));
                            assert_entry_tracks(
                                t32.transition(src64, dst64),
                                t64.transition(src64, dst64),
                                "transition",
                            );
                        }
                    }
                }
            }
            for a1 in 0..stats.n_macro {
                for a2 in 0..stats.n_macro {
                    assert_entry_tracks(
                        t32.coupling(a1, a2),
                        t64.coupling(a1, a2),
                        "coupling",
                    );
                }
            }
            for a in 0..stats.n_macro {
                for post in 0..stats.n_postural {
                    for loc in 0..stats.n_location {
                        assert_entry_tracks(
                            t32.hierarchy(a, post, None, loc),
                            t64.hierarchy(a, post, None, loc),
                            "hierarchy (no gestural)",
                        );
                        for g in 0..stats.n_gestural {
                            assert_entry_tracks(
                                t32.hierarchy(a, post, Some(g), loc),
                                t64.hierarchy(a, post, Some(g), loc),
                                "hierarchy",
                            );
                        }
                    }
                }
            }
        }
    }

    /// Degenerate-boundary contract: with the Laplace mass driven down to
    /// the `f64` subnormal regime, rarely-taken `log_end` / `log_switch`
    /// boundaries bottom out near `ln(5e-324) ≈ −744.4` — far outside a
    /// naive "fits in f32 after exp" intuition but squarely inside the
    /// finite `f32` log range. Both lanes must decode the same stream with
    /// a finite log-probability and no `NaN` anywhere in the result.
    #[test]
    fn clamped_end_boundaries_stay_finite_in_both_lanes(
        seed in 0u64..10_000,
        len in 8usize..24,
    ) {
        let mut rng = Rng::new(seed);
        for laplace in [1e-9, 1e-30, 1e-300, 5e-324] {
            let p = random_params(&mut rng, HdbnConfig::default(), laplace);
            let ticks = random_ticks(&mut rng, &p, len);
            let exact = CoupledHdbn::new(p.clone())
                .viterbi(&ticks)
                .expect("exact decode");
            let fast = CoupledHdbn::new(p)
                .with_decoder(DecoderConfig::exact().fast32())
                .viterbi(&ticks)
                .expect("fast decode");
            prop_assert!(
                exact.log_prob.is_finite(),
                "f64 log_prob {} at laplace {laplace:e}", exact.log_prob
            );
            prop_assert!(
                fast.log_prob.is_finite(),
                "f32 log_prob {} at laplace {laplace:e}", fast.log_prob
            );
            prop_assert_eq!(fast.macros[0].len(), exact.macros[0].len());
        }
    }

    /// Cast contract on the subnormal range itself: the log of every
    /// probability down to the smallest positive `f64` subnormal is a
    /// finite score, and [`Scalar::from_f64`] carries it into `f32`
    /// without flushing to `−∞` (a bare saturating cast would only fail
    /// beyond ±3.4e38; this pins the invariant against any future
    /// "optimized" cast that exponentiates or rescales).
    #[test]
    fn subnormal_probabilities_round_trip_without_flushing(
        exp in 1u32..1074, // 2^-1074 is the smallest positive subnormal
    ) {
        // Split the exponent so neither factor leaves normal f64 range
        // (2^-1073 computed in one powi goes through 2^1073 = inf → 0);
        // the product is a power of two, hence exact down to 2^-1074.
        let half = (exp / 2) as i32;
        let prob = 2f64.powi(-half) * 2f64.powi(half - exp as i32);
        prop_assert!(prob > 0.0);
        let log64 = prob.ln();
        prop_assert!(log64.is_finite());
        let log32 = <f32 as Scalar>::from_f64(log64);
        prop_assert!(log32.is_finite(), "ln({prob:e}) = {log64} flushed to {log32}");
        let err = (f64::from(log32) - log64).abs();
        prop_assert!(err <= log64.abs().max(1.0) * 1e-6);
    }
}

/// Fig 9 tolerance contract: on the CASAS-style workload under the C2
/// strategy, the `f32` lane agrees with the `f64` lane on ≥ 99% of
/// per-tick macro decisions and its macro-averaged accuracy is within
/// 0.1 pp — the acceptance bound the `f32_lane` bench re-measures on the
/// full-size corpus.
#[test]
fn fast32_lane_meets_fig9_tolerance_contract() {
    let cfg = CasasConfig {
        pairs: 3,
        sessions_per_pair: 2,
        ticks: 150,
        ..CasasConfig::default()
    };
    let sessions = generate_casas_dataset(&cfg, 6101);
    let (train, test) = train_test_split(sessions, 0.8);
    let base = CaceConfig::default().with_strategy(Strategy::CorrelationConstraint);
    let exact_engine = engine_with(&train, &base);
    let fast_engine = exact_engine.with_decoder(DecoderConfig::exact().fast32());

    let truth: Vec<[Vec<usize>; 2]> = test
        .iter()
        .map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let decode = |e: &cace::core::CaceEngine| -> Vec<Recognition> {
        test.iter()
            .map(|s| e.recognize(s).expect("recognize"))
            .collect()
    };
    assert_lane_tolerance(
        &truth,
        &decode(&exact_engine),
        &decode(&fast_engine),
        0.99,
        0.001,
        "fig9 C2 f32 lane",
    );
}
