//! `recognize_batch` must be a drop-in replacement for a sequential
//! `recognize` loop: same predictions, same overhead accounting, same
//! ordering — for every pruning strategy.

use cace::behavior::Session;
use cace::core::{CaceConfig, CaceEngine, DecoderConfig, Strategy};
use cace_testkit::{assert_recognitions_identical, engine, engine_with, tiny_corpus_split};

fn corpus() -> (Vec<Session>, Vec<Session>) {
    tiny_corpus_split(6, 90, 20260727, 0.5)
}

#[test]
fn batch_matches_sequential_for_every_strategy() {
    let (train, test) = corpus();
    assert!(test.len() >= 2, "need a real batch");
    for strategy in Strategy::ALL {
        let engine = engine(&train, strategy);
        let batch = engine
            .recognize_batch(&test)
            .expect("batch recognition succeeds");
        assert_eq!(
            batch.len(),
            test.len(),
            "{strategy}: one result per session"
        );
        for (i, session) in test.iter().enumerate() {
            let sequential = engine
                .recognize(session)
                .expect("sequential recognition succeeds");
            // Bit-for-bit identical predicted macro sequences, and identical
            // deterministic overhead accounting; only wall-clock may differ.
            assert_recognitions_identical(
                &batch[i],
                &sequential,
                &format!("{strategy}: session {i}"),
            );
        }
    }
}

#[test]
fn batch_matches_sequential_under_a_pruned_decoder() {
    let (train, test) = corpus();
    for strategy in Strategy::ALL {
        let config = CaceConfig::default()
            .with_strategy(strategy)
            .with_decoder(DecoderConfig::top_k(24));
        let engine = engine_with(&train, &config);
        let batch = engine.recognize_batch(&test).expect("pruned batch");
        for (i, session) in test.iter().enumerate() {
            let sequential = engine.recognize(session).expect("pruned sequential");
            assert_recognitions_identical(
                &batch[i],
                &sequential,
                &format!("{strategy} TopK(24): session {i}"),
            );
        }
    }
}

#[test]
fn batch_is_deterministic_across_runs() {
    let (train, test) = corpus();
    let engine = engine(&train, Strategy::CorrelationConstraint);
    let a = engine.recognize_batch(&test).expect("first run");
    let b = engine.recognize_batch(&test).expect("second run");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.macros, y.macros);
    }
}

#[test]
fn batch_report_accounts_for_the_whole_run() {
    let (train, test) = corpus();
    let engine = engine(&train, Strategy::CorrelationConstraint);
    let report = engine
        .recognize_batch_report(&test)
        .expect("report succeeds");
    assert_eq!(report.recognitions.len(), test.len());
    assert!(report.workers >= 1);
    assert!(report.wall_seconds > 0.0);
    assert!(report.sessions_per_second() > 0.0);
    assert!(report.sequential_seconds() > 0.0);
}

#[test]
fn empty_batch_is_fine() {
    let (train, _) = corpus();
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");
    assert!(engine.recognize_batch(&[]).expect("empty batch").is_empty());
}
