//! `recognize_batch` must be a drop-in replacement for a sequential
//! `recognize` loop: same predictions, same overhead accounting, same
//! ordering — for every pruning strategy.

use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine, Strategy};

fn corpus() -> (Vec<cace::behavior::Session>, Vec<cace::behavior::Session>) {
    let grammar = cace_grammar();
    let sessions = generate_cace_dataset(
        &grammar,
        1,
        6,
        &SessionConfig::tiny().with_ticks(90),
        20260727,
    );
    train_test_split(sessions, 0.5)
}

#[test]
fn batch_matches_sequential_for_every_strategy() {
    let (train, test) = corpus();
    assert!(test.len() >= 2, "need a real batch");
    for strategy in Strategy::ALL {
        let engine = CaceEngine::train(&train, &CaceConfig::default().with_strategy(strategy))
            .expect("training succeeds");
        let batch = engine
            .recognize_batch(&test)
            .expect("batch recognition succeeds");
        assert_eq!(
            batch.len(),
            test.len(),
            "{strategy}: one result per session"
        );
        for (i, session) in test.iter().enumerate() {
            let sequential = engine
                .recognize(session)
                .expect("sequential recognition succeeds");
            // Bit-for-bit identical predicted macro sequences, and identical
            // deterministic overhead accounting; only wall-clock may differ.
            assert_eq!(
                batch[i].macros, sequential.macros,
                "{strategy}: session {i} macros"
            );
            assert_eq!(
                batch[i].states_explored, sequential.states_explored,
                "{strategy}: session {i} states_explored"
            );
            assert_eq!(
                batch[i].transition_ops, sequential.transition_ops,
                "{strategy}: session {i} transition_ops"
            );
            assert_eq!(
                batch[i].rules_fired, sequential.rules_fired,
                "{strategy}: session {i} rules_fired"
            );
            assert_eq!(
                batch[i].mean_joint_size, sequential.mean_joint_size,
                "{strategy}: session {i} mean_joint_size"
            );
        }
    }
}

#[test]
fn batch_is_deterministic_across_runs() {
    let (train, test) = corpus();
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");
    let a = engine.recognize_batch(&test).expect("first run");
    let b = engine.recognize_batch(&test).expect("second run");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.macros, y.macros);
    }
}

#[test]
fn batch_report_accounts_for_the_whole_run() {
    let (train, test) = corpus();
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");
    let report = engine
        .recognize_batch_report(&test)
        .expect("report succeeds");
    assert_eq!(report.recognitions.len(), test.len());
    assert!(report.workers >= 1);
    assert!(report.wall_seconds > 0.0);
    assert!(report.sessions_per_second() > 0.0);
    assert!(report.sequential_seconds() > 0.0);
}

#[test]
fn empty_batch_is_fine() {
    let (train, _) = corpus();
    let engine = CaceEngine::train(&train, &CaceConfig::default()).expect("training succeeds");
    assert!(engine.recognize_batch(&[]).expect("empty batch").is_empty());
}
