//! Hot model swap handoff guarantee, stated as executable properties.
//!
//! A live stream that swaps models at a decision boundary must satisfy
//! two equalities, for every strategy and under exact and pruned beams:
//!
//! 1. **Pre-swap identity** — every decision emitted before the swap is
//!    bit-identical to an unswapped stream's (adaptation is invisible
//!    until the moment it lands);
//! 2. **Post-swap continuation** — everything after the swap equals a
//!    fresh stream resumed under the new model from the old stream's
//!    parked frontier (the swap is exactly park → migrate → resume,
//!    never a secret third state).
//!
//! The suite also pins the migration gate the guarantee rests on: a
//! frontier parked under model v1 must not resume under v2 unless it is
//! explicitly migrated, and a swap composes with park/resume cycles on
//! either side.

use std::sync::Arc;

use proptest::prelude::*;

use cace::behavior::Session;
use cace::core::{
    resume_shared, stream_shared, CaceConfig, CaceEngine, DecoderConfig, Lag, Strategy,
    StreamDecision, StreamingRecognizer,
};
use cace::model::ModelError;
use cace_testkit::{assert_recognitions_identical, engine_with, tiny_corpus};

const LAG: Lag = Lag::Fixed(7);

fn corpora(ticks: usize, seed: u64) -> (Vec<Session>, Vec<Session>, Vec<Session>) {
    let (train_v1, test) = tiny_corpus(4, ticks, seed);
    // A second corpus from the same grammar: same vocabulary and config,
    // different statistics — so v2 is a genuinely different model with a
    // different fingerprint, as an adapted generation would be.
    let (train_v2, _) = tiny_corpus(4, ticks, seed.wrapping_add(1000) | 1);
    (train_v1, train_v2, test)
}

fn push_all(
    stream: &mut StreamingRecognizer<'static>,
    session: &Session,
    range: std::ops::Range<usize>,
) -> Vec<StreamDecision> {
    let mut decisions = Vec::new();
    for tick in &session.ticks[range] {
        if let Some(d) = stream.push(&tick.observed).expect("stream advances") {
            decisions.push(d);
        }
    }
    decisions
}

/// Runs the handoff differential for one engine pair on one session:
/// control stream under `v1` (parked at every boundary along the way),
/// then for each boundary `t` a swapped run and its park→migrate→resume
/// reference.
fn assert_handoff_at_every_boundary(
    v1: &Arc<CaceEngine>,
    v2: &Arc<CaceEngine>,
    session: &Session,
    label: &str,
) {
    // Control: the unswapped stream. Its decision stream is the pre-swap
    // oracle, its park at tick t is the frontier the swap must hand off.
    let mut control = stream_shared(v1, LAG);
    let mut control_decisions: Vec<StreamDecision> = Vec::new();
    let mut parks = Vec::with_capacity(session.len() + 1);
    let mut decided_by = Vec::with_capacity(session.len() + 1);
    for tick in &session.ticks {
        parks.push(control.park());
        decided_by.push(control_decisions.len());
        if let Some(d) = control.push(&tick.observed).expect("control advances") {
            control_decisions.push(d);
        }
    }
    parks.push(control.park());
    decided_by.push(control_decisions.len());

    for t in 0..=session.len() {
        // Swapped run: live under v1 for ticks < t, hot swap, then v2.
        let mut swapped = stream_shared(v1, LAG);
        let pre = push_all(&mut swapped, session, 0..t);
        assert_eq!(
            pre,
            control_decisions[..decided_by[t]],
            "{label}: pre-swap decisions diverged for a swap at tick {t}"
        );
        swapped.swap_model(v2).expect("same config swaps");
        let post = push_all(&mut swapped, session, t..session.len());
        let swapped_rec = swapped.finish().expect("swapped stream finishes");

        // Reference: the same frontier explicitly migrated and resumed
        // under v2 — the continuation the handoff guarantee promises.
        let mut reference =
            resume_shared(v2, &parks[t].migrated_to(v2)).expect("migrated frontier resumes");
        let ref_post = push_all(&mut reference, session, t..session.len());
        let reference_rec = reference.finish().expect("reference stream finishes");

        assert_eq!(
            post, ref_post,
            "{label}: post-swap decisions diverged from the resumed reference at tick {t}"
        );
        assert_recognitions_identical(
            &swapped_rec,
            &reference_rec,
            &format!("{label} swap at {t}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random session shapes × all four strategies × exact and TopK
    /// beams: the handoff guarantee holds at *every* decision boundary.
    #[test]
    fn hot_swap_handoff_holds_at_every_boundary(
        ticks in 40usize..52,
        seed in 0u64..1_000,
        beam_case in 0u8..2,
    ) {
        let decoder = match beam_case {
            0 => DecoderConfig::default(),
            _ => DecoderConfig::top_k(12),
        };
        let (train_v1, train_v2, test) = corpora(ticks, seed);
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let v1 = Arc::new(engine_with(&train_v1, &config));
            let v2 = Arc::new(engine_with(&train_v2, &config));
            prop_assert_ne!(
                v1.hdbn_params().fingerprint(),
                v2.hdbn_params().fingerprint(),
                "the two corpora must train distinguishable models"
            );
            assert_handoff_at_every_boundary(
                &v1,
                &v2,
                &test[0],
                &format!("{strategy} {decoder:?}"),
            );
        }
    }

    /// Swapping to a model with *identical* parameters (a twin trained on
    /// the same corpus) is a no-op at the bit level: decisions, final
    /// recognition, and overhead counters all match the unswapped stream,
    /// under a pruned beam too.
    #[test]
    fn swap_to_identical_params_is_invisible(
        ticks in 40usize..52,
        seed in 0u64..1_000,
        swap_frac in 0.0f64..1.0,
        beam_case in 0u8..2,
    ) {
        let decoder = match beam_case {
            0 => DecoderConfig::default(),
            _ => DecoderConfig::top_k(16),
        };
        let (train, _, test) = corpora(ticks, seed);
        let session = &test[0];
        let t = (swap_frac * session.len() as f64) as usize;
        for strategy in Strategy::ALL {
            let config = CaceConfig::default()
                .with_strategy(strategy)
                .with_decoder(decoder);
            let v1 = Arc::new(engine_with(&train, &config));
            let twin = Arc::new(engine_with(&train, &config));
            prop_assert_eq!(
                v1.hdbn_params().fingerprint(),
                twin.hdbn_params().fingerprint()
            );

            let mut plain = stream_shared(&v1, LAG);
            let want = push_all(&mut plain, session, 0..session.len());

            let mut swapped = stream_shared(&v1, LAG);
            let mut got = push_all(&mut swapped, session, 0..t);
            swapped.swap_model(&twin).expect("twin swaps");
            got.extend(push_all(&mut swapped, session, t..session.len()));

            prop_assert_eq!(&got, &want, "{} {:?}: twin swap at {} changed decisions",
                strategy, decoder, t);
            assert_recognitions_identical(
                &swapped.finish().expect("swapped finishes"),
                &plain.finish().expect("plain finishes"),
                &format!("{strategy} twin swap at {t}"),
            );
        }
    }
}

#[test]
fn parked_frontier_resumes_only_under_its_own_model_unless_migrated() {
    let (train_v1, train_v2, test) = corpora(48, 11);
    let config = CaceConfig::default();
    let v1 = Arc::new(engine_with(&train_v1, &config));
    let v2 = Arc::new(engine_with(&train_v2, &config));
    let session = &test[0];

    let mut stream = stream_shared(&v1, LAG);
    push_all(&mut stream, session, 0..session.len() / 2);
    let parked = stream.park();
    assert_eq!(parked.model_fingerprint(), v1.hdbn_params().fingerprint());

    // Park under v1 → resume under v2: rejected, and the error says how
    // to proceed deliberately.
    match resume_shared(&v2, &parked) {
        Err(ModelError::Persistence { what }) => {
            assert!(
                what.contains("migrate"),
                "rejection must point at explicit migration, got: {what}"
            );
        }
        Err(other) => panic!("expected a persistence rejection, got {other:?}"),
        Ok(_) => panic!("a v1 frontier must not silently resume under v2"),
    }
    // Explicit migration is the sanctioned path…
    let migrated = parked.migrated_to(&v2);
    assert_eq!(migrated.model_fingerprint(), v2.hdbn_params().fingerprint());
    resume_shared(&v2, &migrated).expect("migrated frontier resumes under v2");
    // …and the original frontier still resumes under its own model.
    resume_shared(&v1, &parked).expect("unmigrated frontier still resumes under v1");
}

#[test]
fn swap_composes_with_park_resume_cycles() {
    // Park/resume the stream around and after the swap: the interruptions
    // must change nothing relative to an uninterrupted swapped stream.
    let (train_v1, train_v2, test) = corpora(50, 23);
    let config = CaceConfig::default().with_decoder(DecoderConfig::top_k(12));
    let v1 = Arc::new(engine_with(&train_v1, &config));
    let v2 = Arc::new(engine_with(&train_v2, &config));
    let session = &test[0];
    let t = session.len() / 2;

    let mut plain = stream_shared(&v1, LAG);
    let mut want = push_all(&mut plain, session, 0..t);
    plain.swap_model(&v2).expect("plain swap");
    want.extend(push_all(&mut plain, session, t..session.len()));
    let want_rec = plain.finish().expect("plain swapped stream finishes");

    let mut cycled = stream_shared(&v1, LAG);
    let mut got = Vec::new();
    for (i, tick) in session.ticks.iter().enumerate() {
        if i == t {
            // Park/resume immediately before and after the swap itself.
            cycled = resume_shared(&v1, &cycled.park()).expect("pre-swap cycle");
            cycled.swap_model(&v2).expect("cycled swap");
            cycled = resume_shared(&v2, &cycled.park()).expect("post-swap cycle");
        } else if i > t {
            // And before every subsequent tick: the post-swap stream is an
            // ordinary v2 stream, park/resume cannot tell the difference.
            cycled = resume_shared(&v2, &cycled.park()).expect("steady-state cycle");
        }
        if let Some(d) = cycled.push(&tick.observed).expect("cycled stream advances") {
            got.push(d);
        }
    }
    assert_eq!(
        got, want,
        "park/resume cycles around the swap changed decisions"
    );
    assert_recognitions_identical(
        &cycled.finish().expect("cycled stream finishes"),
        &want_rec,
        "swap composed with park/resume",
    );
}

#[test]
fn swap_rejects_incompatible_configurations_atomically() {
    let (train_v1, _, test) = corpora(44, 5);
    let v1 = Arc::new(engine_with(&train_v1, &CaceConfig::default()));
    // Same data, different HDBN beam config → different swap target class.
    let other = Arc::new(engine_with(
        &train_v1,
        &CaceConfig::default().with_decoder(DecoderConfig::top_k(8)),
    ));
    let session = &test[0];

    let mut stream = stream_shared(&v1, LAG);
    let pre = push_all(&mut stream, session, 0..session.len() / 2);
    assert!(
        stream.swap_model(&other).is_err(),
        "a swap across decoder configs must be refused"
    );
    // The refusal is atomic: the stream keeps serving under v1 exactly as
    // if the swap was never attempted.
    let mut control = stream_shared(&v1, LAG);
    let want = push_all(&mut control, session, 0..session.len());
    let post = push_all(&mut stream, session, session.len() / 2..session.len());
    let mut got = pre;
    got.extend(post);
    assert_eq!(got, want);
    assert_recognitions_identical(
        &stream.finish().expect("stream finishes"),
        &control.finish().expect("control finishes"),
        "rejected swap left state untouched",
    );
}
