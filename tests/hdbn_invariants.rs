//! Inference-layer invariants that span crates: decoder consistency,
//! pruning soundness, and coupling semantics.

use cace::hdbn::{CoupledHdbn, HdbnConfig, HdbnParams, MicroCandidate, SingleHdbn, TickInput};
use cace::mining::constraint::{ConstraintMiner, LabeledSequence};
use cace::mining::{AtomSpace, CandidateTick, PruningEngine, RuleSet, UserCandidates};
use cace::signal::GaussianSampler;

fn toy_params(coupled: bool) -> HdbnParams {
    let mut macros = Vec::new();
    for r in 0..30 {
        for _ in 0..8 {
            macros.push(r % 3);
        }
    }
    let n = macros.len();
    let seq = LabeledSequence {
        macros: [macros.clone(), macros.clone()],
        posturals: [
            macros.iter().map(|&m| m % 2).collect(),
            macros.iter().map(|&m| m % 2).collect(),
        ],
        gesturals: [vec![0; n], vec![0; n]],
        locations: [macros.clone(), macros],
    };
    let stats = ConstraintMiner {
        laplace: 0.3,
        n_macro: 3,
        n_postural: 2,
        n_gestural: 2,
        n_location: 3,
    }
    .mine(&[seq])
    .unwrap();
    let config = if coupled {
        HdbnConfig::default()
    } else {
        HdbnConfig::uncoupled()
    };
    HdbnParams::new(stats, config).unwrap()
}

fn random_ticks(seed: u64, t: usize) -> Vec<TickInput> {
    let mut rng = GaussianSampler::seed_from_u64(seed);
    (0..t)
        .map(|_| {
            let cands = |rng: &mut GaussianSampler| -> Vec<MicroCandidate> {
                (0..2)
                    .map(|p| MicroCandidate {
                        postural: p,
                        gestural: Some(0),
                        location: rng.below(3),
                        obs_loglik: -3.0 * rng.uniform(),
                    })
                    .collect()
            };
            TickInput {
                candidates: [cands(&mut rng), cands(&mut rng)],
                macro_candidates: [None, None],
                macro_bonus: Vec::new(),
            }
        })
        .collect()
}

#[test]
fn uncoupled_joint_decode_equals_two_single_decodes() {
    // With the coupling factor zeroed, the joint decoder must find exactly
    // the two independent chains' optima.
    let params = toy_params(false);
    let coupled = CoupledHdbn::new(params.clone());
    let single = SingleHdbn::new(params);
    for seed in 0..10u64 {
        let ticks = random_ticks(seed, 12);
        let joint = coupled.viterbi(&ticks).unwrap();
        let s0 = single.viterbi(&ticks, 0).unwrap();
        let s1 = single.viterbi(&ticks, 1).unwrap();
        assert!(
            (joint.log_prob - (s0.log_prob + s1.log_prob)).abs() < 1e-9,
            "seed {seed}: joint {} vs {} + {}",
            joint.log_prob,
            s0.log_prob,
            s1.log_prob
        );
    }
}

#[test]
fn macro_bonus_shifts_the_decode() {
    let params = toy_params(true);
    let decoder = CoupledHdbn::new(params);
    let mut ticks = random_ticks(3, 10);
    let neutral = decoder.viterbi(&ticks).unwrap();
    // A huge bonus for activity 2 must pull (at least many) ticks to it.
    for tick in &mut ticks {
        tick.macro_bonus = vec![0.0, 0.0, 50.0];
    }
    let boosted = decoder.viterbi(&ticks).unwrap();
    let count2 = boosted.macros[0].iter().filter(|&&a| a == 2).count();
    assert_eq!(count2, 10, "bonus should dominate: {:?}", boosted.macros[0]);
    assert_ne!(neutral.macros, boosted.macros);
}

#[test]
fn pruning_a_known_true_state_is_never_done_by_sound_rules() {
    // A rule set whose rules reflect genuine invariants of the generating
    // process can never remove the true state. Construct evidence matching
    // the truth, prune, and verify the truth survives.
    let space = AtomSpace::cace();
    let rules = cace::mining::initial_cace_rules();
    let engine = PruningEngine::new(rules);
    // True state: user 1 cycling at SR1 (exercising), user 2 lying in bed
    // (sleeping).
    use cace::mining::item::{Atom, Item};
    let mut evidence = vec![
        space.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Postural(3),
        }),
        space.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Location(0),
        }),
        space.encode(Item {
            user: 1,
            lag: 0,
            atom: Atom::Postural(4),
        }),
        space.encode(Item {
            user: 1,
            lag: 0,
            atom: Atom::Location(4),
        }),
    ];
    evidence.sort_unstable();
    let mut tick = CandidateTick::full(&space);
    engine.prune(&evidence, &mut tick);
    // Exercising (0) for user 1, Sleeping (6) for user 2 must survive.
    assert!(tick.users[0].macros[0], "true macro pruned for user 1");
    assert!(tick.users[1].macros[6], "true macro pruned for user 2");
    assert!(tick.users[0].posturals[3]);
    assert!(tick.users[1].locations[4]);
    assert!(!tick.users[0].any_empty() && !tick.users[1].any_empty());
}

#[test]
fn pruned_decode_agrees_with_full_decode_when_truth_survives() {
    // Restricting candidates to a superset of the decoded path must not
    // change the decoded path.
    let params = toy_params(true);
    let decoder = CoupledHdbn::new(params);
    let ticks = random_ticks(8, 15);
    let full = decoder.viterbi(&ticks).unwrap();
    let mut pruned = ticks.clone();
    for (t, tick) in pruned.iter_mut().enumerate() {
        for u in 0..2 {
            // Keep only the decoded activity plus one alternative.
            let keep = full.macros[u][t];
            tick.macro_candidates[u] = Some(vec![keep, (keep + 1) % 3]);
        }
    }
    let restricted = decoder.viterbi(&pruned).unwrap();
    assert_eq!(restricted.macros, full.macros);
    assert!(restricted.states_explored < full.states_explored);
}

#[test]
fn rule_engine_is_idempotent() {
    let space = AtomSpace::cace();
    let rules = cace::mining::initial_cace_rules();
    let engine = PruningEngine::new(rules);
    use cace::mining::item::{Atom, Item};
    let mut evidence = vec![
        space.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Postural(3),
        }),
        space.encode(Item {
            user: 0,
            lag: 0,
            atom: Atom::Location(0),
        }),
    ];
    evidence.sort_unstable();
    let mut once = CandidateTick::full(&space);
    engine.prune(&evidence, &mut once);
    let mut twice = once.clone();
    let report = engine.prune(&evidence, &mut twice);
    assert_eq!(once, twice, "second prune must be a no-op");
    assert_eq!(report.removed, 0);
}

#[test]
fn empty_rule_set_prunes_nothing() {
    let space = AtomSpace::cace();
    let engine = PruningEngine::new(RuleSet::new(space.clone(), Vec::new()));
    let mut tick = CandidateTick::full(&space);
    let before = tick.joint_size();
    let report = engine.prune(&[], &mut tick);
    assert_eq!(tick.joint_size(), before);
    assert_eq!(report.removed, 0);
}

#[test]
fn candidate_arithmetic_matches_dimension_products() {
    let space = AtomSpace::cace();
    let mut cand = UserCandidates::full(&space);
    assert_eq!(cand.micro_size(), 6 * 5 * 14);
    assert_eq!(cand.joint_size(), 11 * 6 * 5 * 14);
    cand.posturals = vec![true, false, false, false, false, false];
    assert_eq!(cand.micro_size(), 5 * 14);
}
