//! Cross-crate comparison: the coupled HDBN against the HMM / CHMM / FCRF
//! comparators on the same simulated data (the paper's Fig 10 setting).

use cace::baselines::{CoupledHmm, Fcrf, FcrfConfig, Hmm};
use cace::behavior::session::train_test_split;
use cace::behavior::{cace_grammar, generate_cace_dataset, Session, SessionConfig};
use cace::core::{CaceConfig, CaceEngine};
use cace::features::extract_session;

struct BaselineBench {
    classifiers: cace::core::classifiers::MicroClassifiers,
    n_macro: usize,
}

impl BaselineBench {
    fn train(sessions: &[Session]) -> Self {
        let features = cace::core::classifiers::extract_all(sessions);
        let classifiers = cace::core::classifiers::MicroClassifiers::train(
            sessions,
            &features,
            sessions[0].n_activities,
            2,
            99,
        )
        .unwrap();
        Self {
            classifiers,
            n_macro: sessions[0].n_activities,
        }
    }

    fn emissions(&self, session: &Session, use_tag: bool) -> [Vec<Vec<f64>>; 2] {
        let features = extract_session(session);
        let mut out = [Vec::new(), Vec::new()];
        for u in 0..2 {
            for t in 0..session.len() {
                let f = &features.per_tick[t][u];
                out[u].push(self.classifiers.macro_log_proba(
                    f.phone.as_ref().map(|v| v.as_slice()),
                    f.tag.as_ref().filter(|_| use_tag).map(|v| v.as_slice()),
                ));
            }
        }
        out
    }

    fn accuracy(&self, macros: &[Vec<usize>; 2], session: &Session) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for u in 0..2 {
            for (t, tick) in session.ticks.iter().enumerate() {
                total += 1;
                if macros[u][t] == tick.labels[u] {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    }
}

#[test]
fn chdbn_outperforms_or_matches_all_baselines() {
    let grammar = cace_grammar();
    let sessions =
        generate_cace_dataset(&grammar, 1, 5, &SessionConfig::tiny().with_ticks(180), 2016);
    let (train, test) = train_test_split(sessions, 0.8);
    let bench = BaselineBench::train(&train);

    // CHDBN (C2).
    let engine = CaceEngine::train(&train, &CaceConfig::default()).unwrap();

    // HMM.
    let label_seqs: Vec<Vec<usize>> = train
        .iter()
        .flat_map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let hmm = Hmm::fit(&label_seqs, bench.n_macro, 0.5).unwrap();

    // CHMM.
    let paired: Vec<[Vec<usize>; 2]> = train
        .iter()
        .map(|s| [s.labels_of(0), s.labels_of(1)])
        .collect();
    let chmm = CoupledHmm::fit(&paired, bench.n_macro, 0.5).unwrap();

    // FCRF (wearable-only evidence).
    let mut fcrf = Fcrf::new(bench.n_macro);
    let fcrf_data: Vec<_> = train
        .iter()
        .map(|s| (bench.emissions(s, true), [s.labels_of(0), s.labels_of(1)]))
        .collect();
    fcrf.fit(
        &fcrf_data,
        &FcrfConfig {
            epochs: 3,
            learning_rate: 0.05,
        },
    )
    .unwrap();

    let mut acc = std::collections::HashMap::new();
    for session in &test {
        let chdbn = engine.recognize(session).unwrap();
        *acc.entry("CHDBN").or_insert(0.0) += chdbn.accuracy(session);

        let em = bench.emissions(session, true);
        let h = [
            hmm.viterbi(&em[0]).unwrap().macros,
            hmm.viterbi(&em[1]).unwrap().macros,
        ];
        *acc.entry("HMM").or_insert(0.0) += bench.accuracy(&h, session);

        let c = chmm.viterbi(&em).unwrap();
        *acc.entry("CHMM").or_insert(0.0) += bench.accuracy(&c.macros, session);

        let f = fcrf.viterbi(&em).unwrap();
        *acc.entry("FCRF").or_insert(0.0) += bench.accuracy(&f.macros, session);
    }
    let n = test.len() as f64;
    for v in acc.values_mut() {
        *v /= n;
    }

    // Shape of Fig 10: the coupled hierarchical model should not lose to
    // the flat per-user HMM, and should be competitive with every baseline.
    assert!(
        acc["CHDBN"] + 0.03 >= acc["HMM"],
        "CHDBN {:.3} vs HMM {:.3} ({acc:?})",
        acc["CHDBN"],
        acc["HMM"]
    );
    assert!(
        acc["CHDBN"] + 0.10 >= acc["CHMM"],
        "CHDBN {:.3} should be competitive with CHMM {:.3}",
        acc["CHDBN"],
        acc["CHMM"]
    );
    assert!(
        acc["CHDBN"] + 0.10 >= acc["FCRF"],
        "CHDBN {:.3} should be competitive with FCRF {:.3}",
        acc["CHDBN"],
        acc["FCRF"]
    );
}
