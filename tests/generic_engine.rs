//! Property tests pinning the generic trellis engine to a hand-rolled
//! naive reference ([`cace_testkit::toy`]).
//!
//! Scenarios draw every score from the dyadic lattice (multiples of ⅛ in
//! `[-32, 32]`), so all sums along a path are exactly representable in
//! `f64`: agreement is asserted *bitwise*, and equal-score collisions are
//! true ties exercising the strict-`>` first-argmax and run-max
//! memoization contracts rather than float noise.

use proptest::prelude::*;

use cace::hdbn::trellis::{init_into, step_dense_into, step_pruned_into};
use cace::hdbn::{ScoreModel, StateSpace, StepScratch};
use cace_testkit::toy::{
    engine_decode, naive_decode, naive_init, naive_step, ToyFlatModel, ToyModel, ToySpace,
};

/// A generated model + tick sequence + per-tick survivor masks.
#[derive(Debug, Clone)]
struct Scenario {
    pair_group: Vec<u32>,
    prior: Vec<f64>,
    cont: Vec<Vec<f64>>,
    switch: Vec<Vec<f64>>,
    ticks: Vec<Vec<(u32, u32, f64)>>,
    masks: Vec<u64>,
}

fn dyadic() -> impl Strategy<Value = f64> {
    (-256i32..257).prop_map(|k| f64::from(k) / 8.0)
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (1usize..4, 1usize..5, 2usize..6).prop_flat_map(|(n_groups, n_pairs, n_ticks)| {
        (
            proptest::collection::vec(0..n_groups as u32, n_pairs),
            proptest::collection::vec(dyadic(), n_groups),
            proptest::collection::vec(proptest::collection::vec(dyadic(), n_pairs), n_pairs),
            proptest::collection::vec(proptest::collection::vec(dyadic(), n_groups), n_pairs),
            proptest::collection::vec(
                proptest::collection::vec((0usize..3, dyadic(), dyadic()), n_pairs),
                n_ticks,
            ),
            proptest::collection::vec(0u64..u64::MAX, n_ticks),
        )
            .prop_map(move |(pair_group, prior, cont, switch, mults, masks)| {
                // Group-major by construction: groups ascending, each
                // pair contributing 0..=2 states to its own group.
                let ticks: Vec<Vec<(u32, u32, f64)>> = mults
                    .iter()
                    .map(|tick| {
                        let mut states = Vec::new();
                        for g in 0..n_groups as u32 {
                            for (p, &(mult, e1, e2)) in tick.iter().enumerate() {
                                if pair_group[p] != g {
                                    continue;
                                }
                                for &e in [e1, e2].iter().take(mult) {
                                    states.push((g, p as u32, e));
                                }
                            }
                        }
                        if states.is_empty() {
                            states.push((pair_group[0], 0, 0.0));
                        }
                        states
                    })
                    .collect();
                Scenario {
                    pair_group,
                    prior,
                    cont,
                    switch,
                    ticks,
                    masks,
                }
            })
    })
}

fn build(sc: &Scenario) -> (ToyModel, ToyFlatModel, Vec<ToySpace>, Vec<Vec<u32>>) {
    let model = ToyModel {
        prior: sc.prior.clone(),
        pair_group: sc.pair_group.clone(),
        cont: sc.cont.clone(),
        switch: sc.switch.clone(),
    };
    let flat = ToyFlatModel {
        cont: sc.cont.clone(),
    };
    let spaces: Vec<ToySpace> = sc.ticks.iter().map(|t| ToySpace::new(t)).collect();
    // Ascending nonempty survivor sets, one per tick, drawn from the mask
    // bits (state counts never exceed 64 here).
    let keeps: Vec<Vec<u32>> = spaces
        .iter()
        .zip(&sc.masks)
        .map(|(sp, &m)| {
            let mut keep: Vec<u32> = (0..sp.len() as u32)
                .filter(|&j| (m >> j) & 1 == 1)
                .collect();
            if keep.is_empty() {
                keep.push(0);
            }
            keep
        })
        .collect();
    (model, flat, spaces, keeps)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Drives the generic kernels tick by tick against [`naive_step`],
/// asserting bitwise-equal frontiers and equal backpointers. `keeps`
/// selects the pruned kernel; `None` the dense one.
fn check_steps<M: ScoreModel<f64>>(model: &M, spaces: &[ToySpace], keeps: Option<&[Vec<u32>]>) {
    let mut v = Vec::new();
    init_into(model, &spaces[0], &mut v);
    assert_eq!(bits(&v), bits(&naive_init(model, &spaces[0])));
    let mut step: StepScratch<f64> = StepScratch::default();
    for t in 1..spaces.len() {
        let keep = keeps.map(|k| k[t - 1].as_slice());
        let mut back = Vec::new();
        match keep {
            Some(k) => step_pruned_into(
                model,
                &spaces[t - 1],
                &v,
                k,
                &spaces[t],
                &mut step,
                &mut back,
            ),
            None => step_dense_into(model, &spaces[t - 1], &v, &spaces[t], &mut step, &mut back),
        }
        let mut next = Vec::new();
        step.swap_frontier(&mut next);
        let (want_v, want_back) = naive_step(model, &spaces[t - 1], &v, keep, &spaces[t]);
        assert_eq!(bits(&next), bits(&want_v), "frontier diverged at tick {t}");
        assert_eq!(back, want_back, "backpointers diverged at tick {t}");
        v = next;
    }
}

proptest! {
    #[test]
    fn dense_step_matches_naive_reference(sc in arb_scenario()) {
        let (model, flat, spaces, _) = build(&sc);
        check_steps(&model, &spaces, None);
        check_steps(&flat, &spaces, None);
    }

    #[test]
    fn pruned_step_matches_naive_reference(sc in arb_scenario()) {
        let (model, flat, spaces, keeps) = build(&sc);
        check_steps(&model, &spaces, Some(&keeps));
        check_steps(&flat, &spaces, Some(&keeps));
    }

    #[test]
    fn multi_tick_decode_matches_naive_reference(sc in arb_scenario()) {
        let (model, flat, spaces, _) = build(&sc);
        prop_assert_eq!(engine_decode(&model, &spaces), naive_decode(&model, &spaces));
        prop_assert_eq!(engine_decode(&flat, &spaces), naive_decode(&flat, &spaces));
    }
}
