//! Property-based tests of the sensing substrate: trilateration geometry,
//! sensor statistics, and simulator determinism.

use proptest::prelude::*;

use cace::model::{Gestural, MicroState, Postural, SubLocation};
use cace::sensing::{BeaconGrid, GroundTruthTick, NoiseConfig, SmartHome, UserTickTruth};
use cace::signal::GaussianSampler;

// ---------- trilateration ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn noiseless_trilateration_recovers_any_indoor_point(
        x in 0.5f64..8.5,
        y in 0.5f64..7.0,
    ) {
        let grid = BeaconGrid::paper_default(NoiseConfig::noiseless());
        let mut rng = GaussianSampler::seed_from_u64(1);
        let est = grid.sense((x, y), &mut rng);
        let err = ((est.position.0 - x).powi(2) + (est.position.1 - y).powi(2)).sqrt();
        prop_assert!(err < 0.05, "position error {err} at ({x}, {y})");
        prop_assert!(est.in_home);
    }

    #[test]
    fn noisy_trilateration_error_is_bounded(
        x in 1.0f64..8.0,
        y in 1.0f64..6.5,
        seed in 0u64..500,
    ) {
        let grid = BeaconGrid::paper_default(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let est = grid.sense((x, y), &mut rng);
        let err = ((est.position.0 - x).powi(2) + (est.position.1 - y).powi(2)).sqrt();
        // 15 % multiplicative range noise over a ≤ 10 m apartment cannot
        // produce arbitrarily wild solutions from 9 beacons.
        prop_assert!(err < 4.0, "position error {err}");
    }
}

// ---------- sensor banks ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn smart_home_is_deterministic_for_any_truth(
        p1 in 0usize..Postural::COUNT,
        g1 in 0usize..Gestural::COUNT,
        l1 in 0usize..SubLocation::COUNT,
        p2 in 0usize..Postural::COUNT,
        g2 in 0usize..Gestural::COUNT,
        l2 in 0usize..SubLocation::COUNT,
        seed in 0u64..1000,
    ) {
        let truth = GroundTruthTick {
            users: [
                UserTickTruth::of(MicroState::new(
                    Postural::from_index(p1).unwrap(),
                    Gestural::from_index(g1).unwrap(),
                    SubLocation::from_index(l1).unwrap(),
                )),
                UserTickTruth::of(MicroState::new(
                    Postural::from_index(p2).unwrap(),
                    Gestural::from_index(g2).unwrap(),
                    SubLocation::from_index(l2).unwrap(),
                )),
            ],
        };
        let mut a = SmartHome::new(NoiseConfig::default(), seed);
        let mut b = SmartHome::new(NoiseConfig::default(), seed);
        prop_assert_eq!(a.sense_tick(&truth), b.sense_tick(&truth));
    }

    #[test]
    fn noiseless_pir_never_fires_without_motion(
        l1 in 0usize..SubLocation::COUNT,
        l2 in 0usize..SubLocation::COUNT,
        seed in 0u64..200,
    ) {
        // Both residents sitting: no PIR may fire under a noiseless model.
        let truth = GroundTruthTick {
            users: [
                UserTickTruth::of(MicroState::new(
                    Postural::Sitting,
                    Gestural::Silent,
                    SubLocation::from_index(l1).unwrap(),
                )),
                UserTickTruth::of(MicroState::new(
                    Postural::Lying,
                    Gestural::Silent,
                    SubLocation::from_index(l2).unwrap(),
                )),
            ],
        };
        let mut home = SmartHome::new(NoiseConfig::noiseless(), seed);
        let tick = home.sense_tick(&truth);
        prop_assert!(tick.ambient.pir.iter().all(|&f| !f));
    }

    #[test]
    fn noiseless_pir_always_fires_for_a_walker(
        l in 0usize..SubLocation::COUNT,
        seed in 0u64..200,
    ) {
        let loc = SubLocation::from_index(l).unwrap();
        let truth = GroundTruthTick {
            users: [
                UserTickTruth::of(MicroState::new(Postural::Walking, Gestural::Silent, loc)),
                UserTickTruth::of(MicroState::new(
                    Postural::Sitting,
                    Gestural::Silent,
                    SubLocation::Couch1,
                )),
            ],
        };
        let mut home = SmartHome::new(NoiseConfig::noiseless(), seed);
        let tick = home.sense_tick(&truth);
        prop_assert!(tick.ambient.pir[loc.room().index()]);
    }
}

// ---------- IMU synthesis ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn imu_frames_are_finite_for_all_states(
        p in 0usize..Postural::COUNT,
        g in 0usize..Gestural::COUNT,
        seed in 0u64..500,
    ) {
        use cace::sensing::ImuSynthesizer;
        let synth = ImuSynthesizer::new(NoiseConfig::default());
        let mut rng = GaussianSampler::seed_from_u64(seed);
        let posture = Postural::from_index(p).unwrap();
        let gesture = Gestural::from_index(g).unwrap();
        for s in synth.phone_frame(posture, 75, &mut rng) {
            prop_assert!(s.accel.is_finite() && s.gyro.is_finite());
        }
        for s in synth.tag_frame(gesture, posture, 75, &mut rng) {
            prop_assert!(s.accel.is_finite() && s.gyro.is_finite());
        }
    }
}
