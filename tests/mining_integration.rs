//! Integration tests of the miners against the behavioral simulator: the
//! rules CACE discovers must reflect the couplings the grammar encodes.

use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
use cace::core::{CaceConfig, CaceEngine};
use cace::mining::item::Atom;
use cace::model::{MacroActivity, Postural, SubLocation};

fn trained_engine(seed: u64) -> CaceEngine {
    let grammar = cace_grammar();
    let sessions =
        generate_cace_dataset(&grammar, 1, 6, &SessionConfig::tiny().with_ticks(250), seed);
    CaceEngine::train(&sessions, &CaceConfig::default()).unwrap()
}

#[test]
fn miner_discovers_venue_activity_correlations() {
    let engine = trained_engine(42);
    let space = engine.space();
    // Some rule must conclude a macro activity from micro context — the
    // heart of Table IV.
    let macro_rules = engine
        .rules()
        .rules()
        .iter()
        .filter(|r| {
            matches!(
                space.decode(r.consequent).map(|i| i.atom),
                Some(Atom::Macro(_))
            )
        })
        .count();
    assert!(
        macro_rules > 0,
        "no micro ⇒ macro rules mined:\n{}",
        engine.rules()
    );
}

#[test]
fn miner_discovers_bathroom_exclusivity() {
    let engine = trained_engine(43);
    let space = engine.space();
    let bath = SubLocation::Bathroom.index() as u16;
    let found = engine.rules().negatives().iter().any(|neg| {
        let a = space.decode(neg.if_item);
        let b = space.decode(neg.then_not);
        matches!(
            (a.map(|i| i.atom), b.map(|i| i.atom)),
            (Some(Atom::Location(x)), Some(Atom::Location(y))) if x == bath && y == bath
        )
    });
    assert!(
        found,
        "bathroom exclusivity not mined; negatives: {:?}",
        engine.rules().negatives()
    );
}

#[test]
fn mined_rule_confidences_respect_thresholds() {
    let engine = trained_engine(44);
    for rule in engine.rules().rules() {
        assert!(rule.confidence >= 0.99, "rule below minConf: {rule:?}");
        assert!(rule.support >= 0.04 - 1e-9, "rule below minSup: {rule:?}");
        assert!(!rule.antecedent.is_empty());
    }
}

#[test]
fn rule_count_is_in_a_sane_band() {
    // The paper reports 58 unified rules on its CACE dataset and 47 on
    // CASAS. Our mined set is larger because (a) the simulator produces
    // many perfectly deterministic contexts and (b) we keep the per-pair
    // micro→macro exclusions explicit rather than merging them into
    // disjunctive rules; the band below just guards against a blow-up.
    let engine = trained_engine(45);
    let n = engine.rules().len();
    assert!(n >= 5, "too few rules: {n}");
    assert!(n <= 1200, "rule explosion: {n}");
}

#[test]
fn exercising_is_identified_by_cycling_at_the_bike() {
    // Either a mined rule or the hierarchy statistics must tie cycling@SR1
    // to Exercising strongly.
    let engine = trained_engine(46);
    let stats = engine.stats();
    let ex = MacroActivity::Exercising.index();
    let cycling = Postural::Cycling.index();
    // P(cycling | exercising) must dominate P(cycling | other).
    let p_ex = stats.postural_given_macro[ex][cycling];
    for (a, row) in stats.postural_given_macro.iter().enumerate() {
        if a != ex && a != MacroActivity::Random.index() {
            assert!(
                p_ex > row[cycling],
                "cycling should be most typical of Exercising (vs activity {a})"
            );
        }
    }
    let bike = SubLocation::ExerciseBike.index();
    assert!(
        stats.location_given_macro[ex][bike] > 0.5,
        "Exercising should concentrate at SR1: {}",
        stats.location_given_macro[ex][bike]
    );
}

#[test]
fn inter_user_cooccurrence_reflects_shared_dining() {
    let engine = trained_engine(47);
    let stats = engine.stats();
    let dining = MacroActivity::Dining.index();
    // Given one resident dining, the partner's most likely concurrent
    // activity should be dining too (Proposition 4's "dine together").
    let row = &stats.inter_cooc[dining];
    let best = row
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(
        best, dining,
        "partner of a dining resident should most likely dine: {row:?}"
    );
}

#[test]
fn end_probabilities_reflect_episode_lengths() {
    let engine = trained_engine(48);
    let stats = engine.stats();
    // Random is the short filler activity: its termination probability must
    // exceed the long activities' (sleeping).
    let random = stats.end_prob[MacroActivity::Random.index()];
    let sleeping = stats.end_prob[MacroActivity::Sleeping.index()];
    assert!(
        random > sleeping,
        "short filler should end more often: random {random} vs sleeping {sleeping}"
    );
}
