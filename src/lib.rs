//! # CACE — Constraints And Correlations mining Engine
//!
//! A from-scratch Rust reproduction of *CACE: Exploiting Behavioral
//! Interactions for Improved Activity Recognition in Multi-Inhabitant Smart
//! Homes* (Alam, Roy, Misra, Taylor — ICDCS 2016).
//!
//! CACE recognizes complex ("macro") daily activities of multiple smart-home
//! residents from postural, oral-gestural, and location micro-context, by
//! (1) modeling each resident as a two-level hierarchical dynamic Bayesian
//! network coupled to their housemate's chain, and (2) pruning the
//! exponentially large joint state space with behaviorally mined
//! *correlations* (deterministic association rules) and *constraints*
//! (probabilistic transition/co-occurrence structure).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | activity/location vocabularies, context tuples, state spaces |
//! | [`signal`] | quaternions, filters, Goertzel, framing, change-point detection |
//! | [`sensing`] | PIR / object / iBeacon / IMU testbed simulator |
//! | [`behavior`] | multi-inhabitant routine generator (CACE + CASAS datasets) |
//! | [`features`] | the 32-feature frame schema and session extraction |
//! | [`learn`] | random forests, deterministic-annealing clustering, Gaussians |
//! | [`mining`] | Apriori, rule language, correlation & constraint miners |
//! | [`hdbn`] | single/coupled HDBNs, EM training, Viterbi decoding |
//! | [`baselines`] | HMM, coupled HMM, factorial CRF comparators |
//! | [`eval`] | confusion matrices, duration error, ROC areas |
//! | [`core`] | the end-to-end engine and the NH/NCR/NCS/C2 strategies |
//!
//! ## Quickstart
//!
//! ```
//! use cace::behavior::{cace_grammar, generate_cace_dataset, SessionConfig};
//! use cace::behavior::session::train_test_split;
//! use cace::core::{CaceConfig, CaceEngine};
//!
//! let grammar = cace_grammar();
//! let sessions = generate_cace_dataset(
//!     &grammar, 1, 3, &SessionConfig::tiny().with_ticks(100), 7);
//! let (train, test) = train_test_split(sessions, 0.67);
//! let engine = CaceEngine::train(&train, &CaceConfig::default())?;
//! let recognition = engine.recognize(&test[0])?;
//! println!("accuracy: {:.1} %", 100.0 * recognition.accuracy(&test[0]));
//! # Ok::<(), cace::model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cace_baselines as baselines;
pub use cace_behavior as behavior;
pub use cace_core as core;
pub use cace_eval as eval;
pub use cace_features as features;
pub use cace_hdbn as hdbn;
pub use cace_learn as learn;
pub use cace_mining as mining;
pub use cace_model as model;
pub use cace_sensing as sensing;
pub use cace_signal as signal;
